// Command actvet is the repo-specific static-analysis suite enforcing the
// snapshot/publish concurrency contract at build time. The engine's reader
// path is lock-free only because a set of invariants holds everywhere:
// writer state is touched only under the index mutex, frozen snapshot state
// is never written through, hot probe loops stay allocation-free, and the
// published-snapshot pointer is swapped only by the publish machinery. Those
// rules are declared in the source as machine-readable //act: annotations
// (see docs/ANNOTATIONS.md), and actvet checks them with thirteen analyzers.
//
// Per-function checks:
//
//   - lockcheck: fields annotated //act:guarded <mu> may only be accessed
//     from functions that acquire the mutex (<recv>.<mu>.Lock() in the body)
//     or are annotated //act:requires <mu> (they run with it held). Calls to
//     //act:requires functions are checked the same way; goroutine bodies do
//     not inherit the caller's locks; //act:exclusive exempts constructors
//     that own a fresh, unshared value.
//   - frozencheck: values originating from //act:frozen functions or fields
//     (frozen snapshot state, shared between publishes) must never be
//     written through: no element assignment, no append, no copy-into, no
//     passing to an //act:mutates function. //act:freezer exempts the freeze
//     machinery itself.
//   - hotpath: functions annotated //act:hotpath (probe loops, cell id
//     conversion, rope splicing) must not allocate maps, build closures that
//     capture mutated variables by reference, convert concrete values to
//     interfaces, or append to locally declared slices without preallocated
//     capacity.
//   - publishcheck: Store/Swap on a field annotated //act:published (the
//     snapshot pointer) may only appear in //act:publisher functions, and
//     exported methods of a type with guarded fields must not return
//     pointers, slices or maps taken directly from that guarded state.
//   - doccheck: every package has a package comment and every exported
//     symbol a doc comment starting with its name.
//   - gocheck: every go statement launches a function that installs a
//     top-level recover (panic containment at the goroutine boundary —
//     nothing above a goroutine on the stack can recover for it) or carries
//     an //act:norecover <reason> site annotation.
//   - errcheck: in non-main packages, a call whose final result is an error
//     must not be discarded — as a statement, behind defer or go, or
//     assigned to _ — unless the line carries //act:ignore-err <reason>.
//
// Whole-program checks, over a go/types-resolved call graph of the module:
//
//   - lockorder: every mutex field declares a module-unique //act:lock
//     class; double acquisition (directly or through calls), lock-order
//     cycles, prose lock comments without a directive, and guarded state
//     reachable from an unlocked entry point are reported.
//   - snapcheck: two fresh snapshots in one batch (torn view), *Snapshot
//     stored into a field without //act:pinned, and goroutines capturing
//     storage aliased from guarded fields.
//   - allocbound: //act:hotpath and //act:noalloc functions are verified
//     allocation-free against `go build -gcflags=-m=2` escape analysis,
//     with //act:allow-alloc <reason> site suppressions, and must each be
//     covered by a testing.AllocsPerRun case declared with an
//     //act:alloc-harness marker.
//   - atomcheck: every sync/atomic-typed struct field carries //act:atomic;
//     //act:atomic fields are never touched outside sync/atomic, never
//     copied by value, and load-then-store read-modify-write sequences run
//     under a held lock class or a CompareAndSwap loop.
//   - seqcheck: an //act:seqlock <class> generation field follows the
//     seqlock protocol — writers bump odd/even in paired Add(1)s (the
//     restore deferred, so a panic exit cannot strand readers on an odd
//     generation) under the class held exclusively; readers use the
//     even-stable re-check pattern or hold the class.
//   - faultcov: //act:seam functions contain a fault.Hit/MustHit point, and
//     the fault package's Point constants, its Points() registry, the
//     docs/ANNOTATIONS.md injection-point table and the _test.go rules that
//     arm them all stay in agreement.
//
// Usage:
//
//	actvet [-allocharness] [-json] [-faultregistry] [packages]
//
// Packages are directories or "dir/..." patterns relative to the current
// module; with no arguments it vets "./...". -allocharness prints
// AllocsPerRun skeletons for annotated functions that lack a harness case
// instead of vetting; -json reports diagnostics as a JSON array of
// {file,line,col,analyzer,message} objects (file relative to the module
// root) for machine consumption; -faultregistry prints the live
// injection-point list, one point value per line, for the CI drift gate
// against the documentation table. The analyzers use only stdlib packages (go/parser,
// go/ast, go/types); imports — including the standard library — are
// type-checked from source, so the tool runs in the build image with no
// installed toolchain artifacts (allocbound additionally shells out to
// `go build` for the compiler's escape transcript). Exit status is 1 when
// any diagnostic is reported, 2 on load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	harness := flag.Bool("allocharness", false, "print AllocsPerRun skeletons for uncovered //act:hotpath///act:noalloc functions")
	jsonOut := flag.Bool("json", false, "report diagnostics as a JSON array of {file,line,col,analyzer,message} objects")
	registry := flag.Bool("faultregistry", false, "print the live injection-point list, one point value per line")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	if *harness {
		l, _, err := loadPatterns(".", args)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actvet: %v\n", err)
			os.Exit(2)
		}
		ann, _ := collectAnnotations(l)
		out, err := allocHarnessSkeletons(l, buildCallGraph(l, ann), ann)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(out)
		return
	}
	if *registry {
		l, _, err := loadPatterns(".", args)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actvet: %v\n", err)
			os.Exit(2)
		}
		points, err := faultRegistry(l)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actvet: %v\n", err)
			os.Exit(2)
		}
		for _, pt := range points {
			fmt.Println(pt)
		}
		return
	}
	diags, err := vet(".", args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actvet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		modRoot, _, err := findModule(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "actvet: %v\n", err)
			os.Exit(2)
		}
		if err := json.NewEncoder(os.Stdout).Encode(jsonDiags(diags, modRoot)); err != nil {
			fmt.Fprintf(os.Stderr, "actvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "actvet: %d violations\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable form of one diagnostic, with the file
// path relative to the module root so CI can map it onto the PR diff.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func jsonDiags(diags []diagnostic, modRoot string) []jsonDiag {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.pos.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonDiag{File: file, Line: d.pos.Line, Col: d.pos.Column, Analyzer: d.analyzer, Message: d.msg})
	}
	return out
}

// faultRegistry returns the module's declared injection-point values,
// sorted, for the CI drift gate against the documentation table.
func faultRegistry(l *loader) ([]string, error) {
	fp := findFaultPkg(l)
	if fp == nil {
		return nil, fmt.Errorf("no fault package (a local package named fault exporting Point, Hit and MustHit) in the load")
	}
	var points []string
	scope := fp.pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Point" || named.Obj().Pkg() != fp.pkg {
			continue
		}
		points = append(points, constant.StringVal(c.Val()))
	}
	sort.Strings(points)
	return points, nil
}

// loadPatterns loads the packages matched by patterns into a fresh loader.
func loadPatterns(cwd string, patterns []string) (*loader, []*pkgData, error) {
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := expandPatterns(cwd, patterns)
	if err != nil {
		return nil, nil, err
	}
	l := newLoader(modRoot, modPath)
	var pkgs []*pkgData
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	if len(pkgs) == 0 {
		return nil, nil, fmt.Errorf("no Go packages in %s", strings.Join(patterns, " "))
	}
	return l, pkgs, nil
}

// vet loads and analyzes the packages matched by patterns, returning the
// diagnostics sorted by position. The per-function analyzers run on the
// matched packages; the whole-program analyzers run once over every
// module-local package the load pulled in.
func vet(cwd string, patterns []string) ([]diagnostic, error) {
	l, pkgs, err := loadPatterns(cwd, patterns)
	if err != nil {
		return nil, err
	}

	ann, annDiags := collectAnnotations(l)
	cg := buildCallGraph(l, ann)
	var diags []diagnostic
	diags = append(diags, annDiags...)
	for _, p := range pkgs {
		diags = append(diags, lockcheck(l, p, ann)...)
		diags = append(diags, frozencheck(l, p, ann)...)
		diags = append(diags, hotpath(l, p, ann)...)
		diags = append(diags, publishcheck(l, p, ann)...)
		diags = append(diags, doccheck(l, p, ann)...)
		diags = append(diags, gocheck(l, p, ann)...)
		diags = append(diags, errcheck(l, p, ann)...)
	}
	diags = append(diags, lockorder(l, cg, ann)...)
	diags = append(diags, snapcheck(l, cg, ann)...)
	diags = append(diags, atomcheck(l, cg, ann)...)
	diags = append(diags, seqcheck(l, cg, ann)...)
	diags = append(diags, faultcov(l, cg, ann)...)
	ab, err := allocbound(l, cg, ann)
	if err != nil {
		return nil, err
	}
	diags = append(diags, ab...)

	sort.Slice(diags, func(i, j int) bool { return diags[i].String() < diags[j].String() })
	return dedup(diags), nil
}

// dedup drops adjacent duplicates from a sorted slice (the same annotation
// error can surface once per vetted package that loads the file).
func dedup(s []diagnostic) []diagnostic {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v.String() != s[i-1].String() {
			out = append(out, v)
		}
	}
	return out
}

// findModule locates the enclosing go.mod and returns the module root
// directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", filepath.Join(abs, "go.mod"))
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// expandPatterns resolves the command-line package patterns into directories:
// a plain path names one directory, a path ending in /... names every
// package directory under it (testdata, hidden and underscore-prefixed
// directories are skipped, as the go tool does).
func expandPatterns(cwd string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		root = filepath.Join(cwd, root)
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether the directory contains at least one non-test
// .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
