package main

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// seqcheck enforces the seqlock protocol on fields annotated
// //act:seqlock <class> (the sharded engine's commit generation).
//
// The protocol: the generation starts even; a writer takes the declared
// lock class exclusively, bumps the generation odd with Add(1), mutates the
// generation-protected state, and restores it even with a second Add(1) on
// *every* exit path — which in Go means the restoring bump must be
// deferred, because a panic in the protected region unwinds past any
// straight-line restore and leaves readers spinning on an odd generation
// forever. Readers either (a) run the even-stable pattern — load the
// generation, reject odd values, gather, and re-compare a second load
// against the first — or (b) hold the class (shared is enough: writers hold
// it exclusively) while they gather.
//
// Writer diagnostics: Store/Swap/CompareAndSwap on the generation (parity
// is the protocol; only paired Add(1) preserves it), Add with a delta other
// than 1, bumping without the class held exclusively, and unbalanced bumps
// — more plain bumps than deferred restores is precisely "a panic exits
// with the generation odd".
//
// Reader diagnostics, per context with unlocked loads: a single load (no
// stability re-check), no odd-test (g&1) of the loaded value, or no
// re-comparison against a second load.
func seqcheck(l *loader, cg *callGraph, ann *annotations) []diagnostic {
	var diags []diagnostic
	if len(ann.seqlock) == 0 {
		return nil
	}
	classes := requiresResolver(ann)
	for fld, class := range ann.seqlock {
		if !classes.classes[class] {
			diags = append(diags, diagnostic{
				pos:      l.position(fld.Pos()),
				analyzer: "seqcheck",
				msg:      fmt.Sprintf("//act:seqlock %s on %s names no declared //act:lock class", class, fld.Name()),
			})
			continue
		}
		for _, ctx := range cg.contexts {
			diags = append(diags, seqcheckContext(l, ctx, classes, fld, class)...)
		}
	}
	return diags
}

// seqcheckContext applies the writer or reader rules to one context's
// operations on the seqlock field.
func seqcheckContext(l *loader, ctx *funcContext, classes *classResolver, fld types.Object, class string) []diagnostic {
	var ops []atomicOp
	for _, op := range ctx.atomics {
		if op.field == fld {
			ops = append(ops, op)
		}
	}
	if len(ops) == 0 {
		return nil
	}
	writer := false
	for _, op := range ops {
		if op.op != "Load" {
			writer = true
		}
	}
	entry := classes.entryOf(ctx.obj)
	if writer {
		return seqcheckWriter(l, ctx, entry, ops, fld, class)
	}
	return seqcheckReader(l, ctx, entry, ops, fld, class)
}

func seqcheckWriter(l *loader, ctx *funcContext, entry map[string]bool, ops []atomicOp, fld types.Object, class string) []diagnostic {
	var diags []diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, diagnostic{pos: l.position(pos), analyzer: "seqcheck", msg: fmt.Sprintf(format, args...)})
	}
	plain, deferred := 0, 0
	var lastPlain token.Pos
	for _, op := range ops {
		switch op.op {
		case "Load":
			continue
		case "Add":
			if !op.argOne {
				diag(op.pos, "seqlock generation %s must move by Add(1): a larger delta skips parity states", fld.Name())
				continue
			}
		default:
			diag(op.pos, "seqlock generation %s written with %s: only paired Add(1) bumps preserve the odd/even protocol", fld.Name(), op.op)
			continue
		}
		if op.deferred {
			deferred++
			continue
		}
		plain++
		lastPlain = op.pos
		if !heldExclusiveAt(ctx, entry, class, op.pos) {
			diag(op.pos, "seqlock writer bumps %s without holding lock class %s exclusively: "+
				"two concurrent writers tear the parity protocol", fld.Name(), class)
		}
	}
	if plain > deferred {
		diag(lastPlain, "seqlock writer leaves %s odd on a panic exit: %d bump(s) but %d deferred restore(s) "+
			"— pair every Add(1) with a deferred Add(1) so readers are released on every unwind", fld.Name(), plain, deferred)
	} else if deferred > plain {
		diag(ops[0].pos, "seqlock writer defers %d restore(s) of %s against %d bump(s): the generation goes backwards through odd", deferred, fld.Name(), plain)
	}
	return diags
}

func seqcheckReader(l *loader, ctx *funcContext, entry map[string]bool, ops []atomicOp, fld types.Object, class string) []diagnostic {
	var unlocked []atomicOp
	for _, op := range ops {
		if !heldAt(ctx, entry, class, op.pos) {
			unlocked = append(unlocked, op)
		}
	}
	if len(unlocked) == 0 {
		return nil // the declared lock fallback: writers hold it exclusively
	}
	var body ast.Node
	switch {
	case ctx.decl != nil:
		body = ctx.decl.Body
	case ctx.lit != nil:
		body = ctx.lit.Body
	default:
		return nil
	}
	var diags []diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, diagnostic{pos: l.position(pos), analyzer: "seqcheck", msg: fmt.Sprintf(format, args...)})
	}
	if len(unlocked) < 2 {
		diag(unlocked[0].pos, "seqlock reader loads %s once without lock class %s held: "+
			"it cannot detect a commit racing the gather (re-check a second Load, or take the lock)", fld.Name(), class)
		return diags
	}
	oddTest, recheck := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op == token.AND && (isConstOne(l, be.X) || isConstOne(l, be.Y)) {
			oddTest = true
		}
		if be.Op == token.EQL || be.Op == token.NEQ {
			if isLoadOf(l, be.X, fld) || isLoadOf(l, be.Y, fld) {
				recheck = true
			}
		}
		return true
	})
	if !oddTest {
		diag(unlocked[0].pos, "seqlock reader never tests %s for oddness (g&1): it gathers while a writer is mid-commit", fld.Name())
	}
	if !recheck {
		diag(unlocked[0].pos, "seqlock reader never re-compares a fresh %s.Load() against its first read: a torn gather goes undetected", fld.Name())
	}
	return diags
}

// heldExclusiveAt is heldAt restricted to exclusive acquisitions: an RLock
// does not make a writer, and only a non-deferred Unlock of the exclusive
// hold releases it.
func heldExclusiveAt(ctx *funcContext, entry map[string]bool, class string, pos token.Pos) bool {
	held := entry[class]
	for _, e := range ctx.events {
		if e.pos >= pos || e.class != class || e.rlock {
			continue
		}
		if e.unlock {
			if !e.deferred {
				held = false
			}
		} else {
			held = true
		}
	}
	return held
}

// isConstOne reports whether e is the constant 1.
func isConstOne(l *loader, e ast.Expr) bool {
	tv, ok := l.info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Uint64Val(tv.Value)
	return ok && v == 1
}

// isLoadOf reports whether e is a direct <x>.<fld>.Load() call (or the
// legacy atomic.LoadX(&<x>.<fld>)).
func isLoadOf(l *loader, e ast.Expr, fld types.Object) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "Load" {
		if inner, ok := unparen(sel.X).(*ast.SelectorExpr); ok && l.fieldOf(inner) == fld {
			return true
		}
	}
	if callee := l.calleeOf(call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "sync/atomic" && len(call.Args) > 0 {
		if ue, ok := unparen(call.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if inner, ok := unparen(ue.X).(*ast.SelectorExpr); ok && l.fieldOf(inner) == fld {
				return true
			}
		}
	}
	return false
}
