package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// lockcheck enforces the //act:guarded contract: a field annotated
// //act:guarded mu may only be accessed from a function context that holds
// mu, and a function annotated //act:requires mu may only be called from a
// context that holds mu.
//
// A context holds mu when its own body contains a <path>.mu.Lock() call
// (flow-insensitively: the analyzer assumes a function that locks does so
// before touching guarded state, which the deferred-unlock idiom this repo
// uses guarantees), or when the enclosing declaration is annotated
// //act:requires mu. Function literals inherit the enclosing context's held
// set — a deferred or immediately-invoked closure runs under the caller's
// locks — except when launched with a go statement: a goroutine body starts
// with no locks held and must acquire its own. Functions annotated
// //act:exclusive (constructors of fresh, unshared values) are skipped
// entirely.
func lockcheck(l *loader, p *pkgData, ann *annotations) []diagnostic {
	var diags []diagnostic
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := l.info.Defs[fd.Name]
			if ann.exclusive[obj] {
				continue
			}
			held := map[string]bool{}
			for _, mu := range ann.requires[obj] {
				held[mu] = true
			}
			diags = append(diags, lockWalk(l, ann, fd.Body, held)...)
		}
	}
	return diags
}

// lockWalk analyzes one function context: body with the given base held set.
// It first augments the held set with the locks the context itself acquires,
// then reports guarded accesses and requires-calls not covered by it,
// recursing into nested function literals with the inheritance rules above.
func lockWalk(l *loader, ann *annotations, body *ast.BlockStmt, base map[string]bool) []diagnostic {
	held := make(map[string]bool, len(base))
	for mu := range base {
		held[mu] = true
	}
	walkSameContext(body, func(n ast.Node) {
		if mu, ok := lockedMutex(n); ok {
			held[mu] = true
		}
	})

	var diags []diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, diagnostic{pos: l.position(n.Pos()), analyzer: "lockcheck", msg: fmt.Sprintf(format, args...)})
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Handled at the Go/defer/call site by the parent cases below;
			// a bare literal inherits the current held set.
			diags = append(diags, lockWalk(l, ann, n.Body, held)...)
			return false
		case *ast.GoStmt:
			// The goroutine body runs later, without the caller's locks.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				diags = append(diags, lockWalk(l, ann, lit.Body, nil)...)
			} else if callee := l.calleeOf(n.Call); callee != nil {
				for _, mu := range ann.requires[callee] {
					report(n, "go statement calls %s, which requires %s held", callee.Name(), mu)
				}
			}
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.SelectorExpr:
			if fld := l.fieldOf(n); fld != nil {
				if mu, ok := ann.guarded[fld]; ok && !held[mu] {
					report(n.Sel, "access to %s.%s requires %s held (add %s.Lock() or //act:requires %s)",
						fieldOwner(fld), fld.Name(), mu, mu, mu)
				}
			}
		case *ast.CallExpr:
			if callee := l.calleeOf(n); callee != nil {
				for _, mu := range ann.requires[callee] {
					if !held[mu] {
						report(n, "call to %s requires %s held (add %s.Lock() or //act:requires %s)",
							callee.Name(), mu, mu, mu)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return diags
}

// walkSameContext visits every node of body without descending into nested
// function literals.
func walkSameContext(body ast.Node, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// lockedMutex recognizes a mutex acquisition: a call whose callee is a
// selector ending in .Lock (sync.Mutex) or .RLock (sync.RWMutex read side —
// good enough for guarding reads, and this repo only uses plain mutexes).
// The held token is the name of the selector component before it, e.g.
// "mu" in ix.mu.Lock().
func lockedMutex(n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return "", false
	}
	switch x := unparen(sel.X).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		return x.Sel.Name, true
	}
	return "", false
}

// fieldOwner names the struct type declaring a field, for diagnostics.
func fieldOwner(fld *types.Var) string {
	if fld.Pkg() == nil {
		return "?"
	}
	// Walk the package scope for the named type whose underlying struct
	// contains the field.
	scope := fld.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return tn.Name()
			}
		}
	}
	return "?"
}
