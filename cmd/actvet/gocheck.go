package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// gocheck enforces the goroutine failure-domain contract: every goroutine
// must either contain its own panics — a top-level `defer` in the launched
// function that calls recover (directly, in a deferred literal, or in a
// deferred call to a function that does) — or carry an explicit
// //act:norecover <reason> site annotation on (or directly above) the go
// statement. An unguarded, unannotated goroutine is exactly how a contained
// subsystem failure escalates to process death: nothing above it on the
// stack can recover for it.
//
// The recover must be installed at the top level of the launched function
// itself. A recover buried in a conditional, or in a function the goroutine
// merely calls, does not guard the whole body, so it does not count.
func gocheck(l *loader, p *pkgData, ann *annotations) []diagnostic {
	var diags []diagnostic
	decls := moduleFuncDecls(l)
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// The annotation may trail the go statement's line or sit on
			// the line directly above it.
			pos := l.position(g.Pos())
			if _, ok := ann.norecover[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]; ok {
				return true
			}
			if _, ok := ann.norecover[fmt.Sprintf("%s:%d", pos.Filename, pos.Line-1)]; ok {
				return true
			}
			var desc string
			switch fun := unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				if bodyInstallsRecover(l, decls, fun.Body) {
					return true
				}
				desc = "a func literal"
			default:
				callee := l.calleeOf(g.Call)
				if callee == nil {
					desc = "a dynamic callee"
					break
				}
				if d, ok := decls[callee]; ok && d.Body != nil && bodyInstallsRecover(l, decls, d.Body) {
					return true
				}
				desc = callee.Name()
			}
			diags = append(diags, diagnostic{
				pos:      pos,
				analyzer: "gocheck",
				msg: fmt.Sprintf("go statement launches %s that installs no top-level recover: "+
					"a panic in it kills the process (defer a recover-and-report, or annotate //act:norecover <reason>)", desc),
			})
			return true
		})
	}
	return diags
}

// moduleFuncDecls indexes every module-local function declaration by its
// object, so a `go pkg.Worker(...)` launch can be checked against Worker's
// own body.
func moduleFuncDecls(l *loader) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, p := range l.pkgs {
		if !p.local {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if obj := l.info.Defs[fd.Name]; obj != nil {
						decls[obj] = fd
					}
				}
			}
		}
	}
	return decls
}

// bodyInstallsRecover reports whether the function body has a top-level
// defer that recovers: `defer func() { ... recover() ... }()`, or a deferred
// call to a module-local function whose body calls recover (which Go's
// recover semantics accept — the deferred function calls recover directly).
func bodyInstallsRecover(l *loader, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if lit, ok := unparen(d.Call.Fun).(*ast.FuncLit); ok {
			if callsRecover(l, lit.Body) {
				return true
			}
			continue
		}
		if callee := l.calleeOf(d.Call); callee != nil {
			if fd, ok := decls[callee]; ok && fd.Body != nil && callsRecover(l, fd.Body) {
				return true
			}
		}
	}
	return false
}

// callsRecover reports whether the node contains a call to the recover
// builtin (not descending into nested function literals, whose recover would
// belong to a different frame).
func callsRecover(l *loader, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "recover" {
				if _, isBuiltin := l.objOf(id).(*types.Builtin); isBuiltin || l.objOf(id) == nil {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
