package main

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// faultcov keeps the fault-injection seam registry honest: the Point
// constants in the module's fault package, the //act:seam annotations on the
// engine functions that host them, the injection-point registry table in
// docs/ANNOTATIONS.md, and the test rules that arm them must all agree.
// Hand-maintained three-way agreement is exactly the kind that drifts, and a
// drifted seam is a chaos suite that silently stops covering a failure path.
//
//   - a function annotated //act:seam must contain a fault.Hit/MustHit call;
//   - a fault.Hit/MustHit call outside the fault package must sit in an
//     //act:seam function, and its point argument must be one of the
//     declared Point constants;
//   - every declared Point constant must be listed in the fault package's
//     Points() registry function, hit by at least one seam, documented as a
//     row of the "Injection-point registry" table in docs/ANNOTATIONS.md,
//     and referenced by at least one _test.go file (a rule that can arm it);
//   - a documentation row naming no declared constant is drift in the other
//     direction and fails the same way.
func faultcov(l *loader, cg *callGraph, ann *annotations) []diagnostic {
	var diags []diagnostic
	fp := findFaultPkg(l)
	if fp == nil {
		// No fault package: every declared seam is unsatisfiable.
		for obj := range ann.seam {
			diags = append(diags, diagnostic{
				pos:      l.position(obj.Pos()),
				analyzer: "faultcov",
				msg:      "//act:seam declared but the module has no fault package (a package named fault exporting Point, Hit and MustHit)",
			})
		}
		return diags
	}
	diag := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, diagnostic{pos: l.position(pos), analyzer: "faultcov", msg: fmt.Sprintf(format, args...)})
	}

	// The declared injection points, by constant object.
	type pointInfo struct {
		obj types.Object
		val string
	}
	var points []pointInfo
	byObj := map[types.Object]string{}
	scope := fp.pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Point" || named.Obj().Pkg() != fp.pkg {
			continue
		}
		val := constant.StringVal(c.Val())
		points = append(points, pointInfo{obj: c, val: val})
		byObj[c] = val
	}
	sort.Slice(points, func(i, j int) bool { return points[i].val < points[j].val })

	hitObj := scope.Lookup("Hit")
	mustHitObj := scope.Lookup("MustHit")

	// Every Hit/MustHit site outside the fault package: resolve the point
	// argument, demand the //act:seam annotation on the hosting function.
	hitBy := map[types.Object]bool{}  // const -> some seam hits it
	hasHit := map[types.Object]bool{} // seam function -> contains a hit
	for _, p := range l.pkgs {
		if !p.local || p == fp {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fnObj := l.info.Defs[fd.Name]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := l.calleeOf(call)
					if callee == nil || (callee != hitObj && callee != mustHitObj) {
						return true
					}
					if fnObj != nil && !ann.seam[fnObj] {
						diag(call.Pos(), "%s call in %s, which is not annotated //act:seam: declare the seam so its coverage is tracked", callee.Name(), fnObj.Name())
					}
					if fnObj != nil {
						hasHit[fnObj] = true
					}
					if len(call.Args) == 0 {
						return true
					}
					var argObj types.Object
					switch a := unparen(call.Args[0]).(type) {
					case *ast.Ident:
						argObj = l.objOf(a)
					case *ast.SelectorExpr:
						argObj = l.objOf(a.Sel)
					}
					if _, ok := byObj[argObj]; ok {
						hitBy[argObj] = true
					} else {
						diag(call.Args[0].Pos(), "%s point is not one of the fault package's declared Point constants: ad-hoc points escape the registry, the docs and the chaos sweep", callee.Name())
					}
					return true
				})
			}
		}
	}

	// Declared seams must contain an injection point.
	decls := moduleFuncDecls(l)
	for obj := range ann.seam {
		if hasHit[obj] {
			continue
		}
		if fd, ok := decls[obj]; ok && fd.Body != nil {
			diag(fd.Name.Pos(), "function %s is annotated //act:seam but contains no fault.Hit/MustHit injection point", obj.Name())
		}
	}

	// The Points() registry function must list every constant.
	inPoints := map[types.Object]bool{}
	for _, f := range fp.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Points" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := l.objOf(id); obj != nil {
						if _, ok := byObj[obj]; ok {
							inPoints[obj] = true
						}
					}
				}
				return true
			})
		}
	}

	// The documentation registry table.
	docRows, docDiags := faultDocRows(l, fp)
	diags = append(diags, docDiags...)
	testRefs := faultTestRefs(l, fp, byObj)

	for _, pt := range points {
		if !inPoints[pt.obj] {
			diag(pt.obj.Pos(), "injection point %s is not listed in Points(): the randomized chaos sweep will never arm it", pt.val)
		}
		if !hitBy[pt.obj] {
			diag(pt.obj.Pos(), "injection point %s has no fault.Hit/MustHit site outside the fault package: an orphaned point is a seam that tests nothing", pt.val)
		}
		if docRows != nil {
			if _, ok := docRows[pt.val]; !ok {
				diag(pt.obj.Pos(), "injection point %s has no row in the docs/ANNOTATIONS.md injection-point registry table", pt.val)
			}
		}
		if !testRefs[pt.obj.Name()] {
			diag(pt.obj.Pos(), "injection point %s is referenced by no _test.go file: no rule can arm the seam, so it is never exercised", pt.val)
		}
	}
	// Drift in the other direction: documented rows naming no constant.
	vals := map[string]bool{}
	for _, pt := range points {
		vals[pt.val] = true
	}
	var rows []string
	for row := range docRows {
		if !vals[row] {
			rows = append(rows, row)
		}
	}
	sort.Strings(rows)
	for _, row := range rows {
		if tp := scope.Lookup("Point"); tp != nil {
			diag(tp.Pos(), "docs/ANNOTATIONS.md registry row %q names no declared Point constant: stale documentation", row)
		}
	}
	return diags
}

// findFaultPkg locates the module's fault package: a local package named
// fault that exports a string-backed Point type and Hit/MustHit functions.
func findFaultPkg(l *loader) *pkgData {
	var paths []string
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := l.pkgs[path]
		if !p.local || p.pkg.Name() != "fault" {
			continue
		}
		scope := p.pkg.Scope()
		tn, ok := scope.Lookup("Point").(*types.TypeName)
		if !ok {
			continue
		}
		if b, ok := tn.Type().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
			continue
		}
		if scope.Lookup("Hit") == nil || scope.Lookup("MustHit") == nil {
			continue
		}
		return p
	}
	return nil
}

// faultDocRows parses the "Injection-point registry" table of
// docs/ANNOTATIONS.md under the module root, returning the point value of
// each row (the backticked first cell) keyed to its line number. A missing
// file or table is itself a diagnostic, anchored at the Point type.
func faultDocRows(l *loader, fp *pkgData) (map[string]int, []diagnostic) {
	anchor := l.position(fp.pkg.Scope().Lookup("Point").Pos())
	path := filepath.Join(l.modRoot, "docs", "ANNOTATIONS.md")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, []diagnostic{{pos: anchor, analyzer: "faultcov",
			msg: "docs/ANNOTATIONS.md is missing: the injection-point registry table must document every declared point"}}
	}
	rows := map[string]int{}
	inTable := false
	for i, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "#") && strings.Contains(strings.ToLower(line), "injection-point registry"):
			inTable = true
		case inTable && strings.HasPrefix(line, "#"):
			inTable = false
		case inTable && strings.HasPrefix(line, "| `"):
			rest := strings.TrimPrefix(line, "| `")
			if name, _, ok := strings.Cut(rest, "`"); ok {
				rows[name] = i + 1
			}
		}
	}
	if !inTable && len(rows) == 0 {
		return nil, []diagnostic{{pos: anchor, analyzer: "faultcov",
			msg: "docs/ANNOTATIONS.md has no \"Injection-point registry\" table: every declared point needs a documented row"}}
	}
	return rows, nil
}

// faultTestRefs scans every _test.go file of the module (parse-only — test
// files are not part of the type-checked load) for references to the fault
// package's Point constants: a qualified selector <pkg>.<Const> anywhere, or
// a bare <Const> in the fault package's own test files.
func faultTestRefs(l *loader, fp *pkgData, byObj map[types.Object]string) map[string]bool {
	names := map[string]bool{}
	for obj := range byObj {
		names[obj.Name()] = true
	}
	refs := map[string]bool{}
	fset := token.NewFileSet()
	for _, p := range l.pkgs {
		if !p.local {
			continue
		}
		matches, err := filepath.Glob(filepath.Join(p.dir, "*_test.go"))
		if err != nil {
			continue
		}
		inFault := p == fp
		for _, path := range matches {
			f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if _, ok := n.X.(*ast.Ident); ok && names[n.Sel.Name] {
						refs[n.Sel.Name] = true
					}
				case *ast.Ident:
					if inFault && names[n.Name] {
						refs[n.Name] = true
					}
				}
				return true
			})
		}
	}
	return refs
}
