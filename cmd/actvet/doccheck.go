package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// doccheck enforces the repo's godoc contract (absorbed from the former
// cmd/lintdoc so one driver runs every check): each package carries a
// package comment, and every exported symbol — type, function, method,
// const and var — carries a doc comment starting with the symbol's name
// (leading articles allowed), the convention of revive's `exported` rule
// and the original golint. Methods on unexported types are not part of
// the API and are skipped, as are example programs under examples/.
func doccheck(l *loader, p *pkgData, ann *annotations) []diagnostic {
	if underExamples(l, p) {
		return nil
	}
	var diags []diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, diagnostic{pos: l.position(pos), analyzer: "doccheck", msg: fmt.Sprintf(format, args...)})
	}

	hasPkgDoc := false
	for _, f := range p.files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(p.files) > 0 {
		report(p.files[0].Package, "package %s has no package comment", p.pkg.Name())
	}

	for _, f := range p.files {
		for _, decl := range f.Decls {
			docDecl(decl, report)
		}
	}
	return diags
}

// underExamples reports whether the package lives under the module's
// examples tree (runnable demos, not API surface).
func underExamples(l *loader, p *pkgData) bool {
	rel, err := filepath.Rel(l.modRoot, p.dir)
	if err != nil {
		return false
	}
	return rel == "examples" || strings.HasPrefix(filepath.ToSlash(rel), "examples/")
}

// docDecl checks one top-level declaration.
func docDecl(decl ast.Decl, report func(token.Pos, string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		checkDocComment(d.Doc, d.Name.Name, "function", d.Pos(), report)
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
			return
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				doc := s.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				checkDocComment(doc, s.Name.Name, "type", s.Pos(), report)
			case *ast.ValueSpec:
				name := exportedName(s.Names)
				if name == "" {
					continue
				}
				// A doc comment on the grouped declaration covers the whole
				// block (the idiomatic way to document related constants).
				if d.Doc != nil && len(d.Specs) > 1 {
					continue
				}
				doc := s.Doc
				if doc == nil {
					doc = d.Doc
				}
				if doc == nil {
					report(s.Pos(), "exported %s %s has no doc comment", strings.ToLower(d.Tok.String()), name)
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true
		}
	}
}

// exportedName returns the first exported name of a value spec.
func exportedName(names []*ast.Ident) string {
	for _, n := range names {
		if n.IsExported() {
			return n.Name
		}
	}
	return ""
}

// checkDocComment requires a doc comment whose first word is the symbol
// name, optionally preceded by an article.
func checkDocComment(doc *ast.CommentGroup, name, kind string, pos token.Pos, report func(token.Pos, string, ...any)) {
	if doc == nil {
		report(pos, "exported %s %s has no doc comment", kind, name)
		return
	}
	text := strings.TrimSpace(doc.Text())
	for _, article := range []string{"A ", "An ", "The "} {
		if strings.HasPrefix(text, article) {
			text = text[len(article):]
			break
		}
	}
	if !strings.HasPrefix(text, name) {
		report(pos, "doc comment of exported %s %s should start with %q", kind, name, name)
	}
}
