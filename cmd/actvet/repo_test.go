package main

import "testing"

// TestRepoClean runs the full suite over the real repository packages, so
// the tree can never merge in an annotated-but-violating state. It is
// also the regression test for every violation fixed during annotation
// sweeps: reintroducing one (a second Current() in a batch, a goroutine
// capturing guarded storage, an allocation on a hot path) fails here.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module and runs escape analysis")
	}
	diags, err := vet("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on the merged tree: %s", d)
	}
}
