package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"strings"
)

// diagnostic is one analyzer finding.
type diagnostic struct {
	pos      token.Position
	analyzer string
	msg      string
}

func (d diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.pos.Filename, d.pos.Line, d.pos.Column, d.analyzer, d.msg)
}

// pkgData is one parsed and type-checked package.
type pkgData struct {
	path  string // import path
	dir   string
	files []*ast.File
	pkg   *types.Package
	local bool // inside the analyzed module (annotations are collected from it)
}

// loader parses and type-checks packages from source. Module-local import
// paths resolve into the module tree, everything else into GOROOT/src — no
// installed export data, no external tooling, so the loader works in a bare
// build image. Type information for every module-local package accumulates
// in one shared types.Info.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	info    *types.Info
	pkgs    map[string]*pkgData // by import path
	byDir   map[string]*pkgData
	loading map[string]bool // import-cycle detection
}

func newLoader(modRoot, modPath string) *loader {
	return &loader{
		fset:    token.NewFileSet(),
		modRoot: modRoot,
		modPath: modPath,
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
		pkgs:    map[string]*pkgData{},
		byDir:   map[string]*pkgData{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer by resolving the path to a directory and
// loading it. It makes the loader usable as the Importer of its own
// types.Config.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, local := l.resolve(path)
	p, err := l.load(dir, path, local)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

// resolve maps an import path to its source directory. Paths inside the
// module map into the module tree; everything else is expected in GOROOT.
func (l *loader) resolve(path string) (dir string, local bool) {
	if path == l.modPath {
		return l.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
	}
	return filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(path)), false
}

// loadDir loads the package in dir (a directory inside the module),
// deriving its import path from the module root. Directories without
// buildable Go files return (nil, nil).
func (l *loader) loadDir(dir string) (*pkgData, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.byDir[abs]; ok {
		return p, nil
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil {
		return nil, err
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(abs, path, true)
}

// load parses and type-checks one package directory, caching the result.
func (l *loader) load(dir, path string, local bool) (*pkgData, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok && local {
			return nil, nil
		}
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Type information is only recorded for module-local packages — the
	// analyzers never look inside the standard library.
	info := l.info
	if !local {
		info = nil
	}
	conf := types.Config{Importer: l, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &pkgData{path: path, dir: dir, files: files, pkg: pkg, local: local}
	l.pkgs[path] = p
	l.byDir[dir] = p
	return p, nil
}

// position returns the token.Position of a node.
func (l *loader) position(pos token.Pos) token.Position { return l.fset.Position(pos) }

// typeOf returns the type of an expression, or nil when unknown.
func (l *loader) typeOf(e ast.Expr) types.Type { return l.info.TypeOf(e) }

// objOf resolves an identifier to its object (definition or use).
func (l *loader) objOf(id *ast.Ident) types.Object {
	if o := l.info.Defs[id]; o != nil {
		return o
	}
	return l.info.Uses[id]
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves the called function object of a call expression: a
// package-level function, a method, or nil (builtin, function value,
// conversion).
func (l *loader) calleeOf(call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := l.objOf(fun).(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if sel, ok := l.info.Selections[fun]; ok {
			return sel.Obj()
		}
		if o, ok := l.objOf(fun.Sel).(*types.Func); ok {
			return o // package-qualified call
		}
	}
	return nil
}

// fieldOf resolves a selector expression to the field variable it reads or
// writes, or nil when it is not a field selection.
func (l *loader) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := l.info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
