package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"unicode"
)

// publishcheck enforces the single-publisher contract around the atomically
// published snapshot pointer, and keeps exported methods from leaking
// writer-guarded state:
//
//   - Store and Swap on a field annotated //act:published may only appear
//     inside functions annotated //act:publisher (publish and the
//     compaction-landing path). Function literals inherit the enclosing
//     declaration's publisher status — the compactor's landing goroutine is
//     a literal inside an annotated function.
//   - An exported method on a type that has //act:guarded fields must not
//     return one of those fields when its type shares storage (slice, map,
//     pointer, chan, func, interface), nor the address of any of them —
//     callers would hold an interior pointer into state that mutates under
//     the writer lock.
func publishcheck(l *loader, p *pkgData, ann *annotations) []diagnostic {
	var diags []diagnostic
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, storeSwapCheck(l, ann, fd)...)
			diags = append(diags, leakCheck(l, ann, fd)...)
		}
	}
	return diags
}

// storeSwapCheck flags Store/Swap calls on published fields outside
// //act:publisher functions.
func storeSwapCheck(l *loader, ann *annotations, fd *ast.FuncDecl) []diagnostic {
	if ann.publisher[l.info.Defs[fd.Name]] {
		return nil
	}
	var diags []diagnostic
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Store" && sel.Sel.Name != "Swap") {
			return true
		}
		recv, ok := unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fld := l.fieldOf(recv); fld != nil && ann.published[fld] {
			diags = append(diags, diagnostic{
				pos:      l.position(call.Pos()),
				analyzer: "publishcheck",
				msg: fmt.Sprintf("%s on published field %s outside an //act:publisher function",
					sel.Sel.Name, fld.Name()),
			})
		}
		return true
	})
	return diags
}

// leakCheck flags exported methods returning guarded reference-typed state.
func leakCheck(l *loader, ann *annotations, fd *ast.FuncDecl) []diagnostic {
	if fd.Recv == nil || !isExported(fd.Name.Name) {
		return nil
	}
	var diags []diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals escape through other channels; keep to returns of the method itself
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if fld, addr := guardedFieldExpr(l, ann, res); fld != nil {
				if addr || sharesStorage(fld.Type()) {
					diags = append(diags, diagnostic{
						pos:      l.position(res.Pos()),
						analyzer: "publishcheck",
						msg: fmt.Sprintf("exported method %s returns guarded field %s — interior pointer into writer state",
							fd.Name.Name, fld.Name()),
					})
				}
			}
		}
		return true
	})
	return diags
}

// guardedFieldExpr reports whether e denotes a //act:guarded field (or its
// address) of the method receiver or anything else.
func guardedFieldExpr(l *loader, ann *annotations, e ast.Expr) (fld *types.Var, addr bool) {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		if f := l.fieldOf(e); f != nil {
			if _, ok := ann.guarded[f]; ok {
				return f, false
			}
		}
	case *ast.UnaryExpr:
		if sel, ok := unparen(e.X).(*ast.SelectorExpr); ok {
			if f := l.fieldOf(sel); f != nil {
				if _, ok := ann.guarded[f]; ok {
					return f, true
				}
			}
		}
	}
	return nil, false
}

// sharesStorage reports whether values of type t alias underlying storage
// when copied (so returning the field hands out an interior pointer).
func sharesStorage(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

func isExported(name string) bool {
	for _, r := range name {
		return unicode.IsUpper(r)
	}
	return false
}
