package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// The //act: annotation language. Annotations are directive comments (no
// space after the slashes) placed in the doc comment of a function or struct
// field, or as a field's trailing line comment:
//
//	//act:guarded <mu>    field: accessed only while holding the mutex <mu>
//	//act:requires <mu>   function: every caller must hold <mu>
//	//act:exclusive       function: operates on a fresh, unshared value;
//	                      lockcheck does not apply inside it
//	//act:frozen          function: its results are frozen (shared with
//	                      immutable snapshots, must never be written through)
//	                      field: permanently frozen once set
//	//act:freezer         function: the freeze/patch machinery itself;
//	                      frozencheck does not apply inside it
//	//act:mutates <n>     function: writes through its n-th argument
//	                      (0-based; receivers are not counted)
//	//act:hotpath         function: checked for allocation/indirection bans
//	//act:published       field: the atomically published snapshot pointer
//	//act:publisher       function: may Store/Swap a //act:published field
//
// The mutex name in guarded/requires is resolved lexically: a function
// "holds mu" when its own body (not a nested goroutine) contains a
// <path>.mu.Lock() call, or when it is annotated //act:requires mu.
type annotations struct {
	guarded      map[types.Object]string
	requires     map[types.Object][]string
	exclusive    map[types.Object]bool
	frozenFns    map[types.Object]bool
	frozenFields map[types.Object]bool
	freezer      map[types.Object]bool
	mutates      map[types.Object][]int
	hotpath      map[types.Object]bool
	published    map[types.Object]bool
	publisher    map[types.Object]bool
}

func newAnnotations() *annotations {
	return &annotations{
		guarded:      map[types.Object]string{},
		requires:     map[types.Object][]string{},
		exclusive:    map[types.Object]bool{},
		frozenFns:    map[types.Object]bool{},
		frozenFields: map[types.Object]bool{},
		freezer:      map[types.Object]bool{},
		mutates:      map[types.Object][]int{},
		hotpath:      map[types.Object]bool{},
		published:    map[types.Object]bool{},
		publisher:    map[types.Object]bool{},
	}
}

// directive is one parsed //act: comment.
type directive struct {
	name string
	args []string
	pos  ast.Node
}

// parseDirectives extracts //act: directives from a comment group. Directive
// comments are excluded from CommentGroup.Text, so the raw list is scanned.
func parseDirectives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, "//act:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				out = append(out, directive{name: "", pos: c})
				continue
			}
			out = append(out, directive{name: fields[0], args: fields[1:], pos: c})
		}
	}
	return out
}

// collectAnnotations gathers //act: annotations from every module-local
// package the loader has seen, reporting malformed or misplaced directives
// as diagnostics.
func collectAnnotations(l *loader) (*annotations, []diagnostic) {
	ann := newAnnotations()
	var diags []diagnostic
	bad := func(n ast.Node, format string, args ...any) {
		diags = append(diags, diagnostic{pos: l.position(n.Pos()), analyzer: "annotation", msg: fmt.Sprintf(format, args...)})
	}
	for _, p := range l.pkgs {
		if !p.local {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj := l.info.Defs[d.Name]
					for _, dir := range parseDirectives(d.Doc) {
						applyFuncDirective(ann, obj, dir, bad)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						collectFieldAnnotations(l, ann, st, bad)
					}
				}
			}
		}
	}
	return ann, diags
}

// applyFuncDirective records one function-level directive.
func applyFuncDirective(ann *annotations, obj types.Object, dir directive, bad func(ast.Node, string, ...any)) {
	switch dir.name {
	case "requires":
		if len(dir.args) == 0 {
			bad(dir.pos, "//act:requires needs a mutex name")
			return
		}
		ann.requires[obj] = append(ann.requires[obj], dir.args...)
	case "exclusive":
		ann.exclusive[obj] = true
	case "frozen":
		ann.frozenFns[obj] = true
	case "freezer":
		ann.freezer[obj] = true
	case "mutates":
		if len(dir.args) == 0 {
			bad(dir.pos, "//act:mutates needs an argument index")
			return
		}
		for _, a := range dir.args {
			n, err := strconv.Atoi(a)
			if err != nil || n < 0 {
				bad(dir.pos, "//act:mutates: bad argument index %q", a)
				return
			}
			ann.mutates[obj] = append(ann.mutates[obj], n)
		}
	case "hotpath":
		ann.hotpath[obj] = true
	case "publisher":
		ann.publisher[obj] = true
	case "guarded", "published":
		bad(dir.pos, "//act:%s applies to struct fields, not functions", dir.name)
	default:
		bad(dir.pos, "unknown directive //act:%s", dir.name)
	}
}

// collectFieldAnnotations records field-level directives of one struct type,
// validating guarded mutex names against the struct's own fields.
func collectFieldAnnotations(l *loader, ann *annotations, st *ast.StructType, bad func(ast.Node, string, ...any)) {
	mutexes := map[string]bool{}
	fields := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			fields[name.Name] = true
			if t := l.typeOf(f.Type); t != nil && isMutex(t) {
				mutexes[name.Name] = true
			}
		}
	}
	for _, f := range st.Fields.List {
		for _, dir := range parseDirectives(f.Doc, f.Comment) {
			switch dir.name {
			case "guarded":
				if len(dir.args) != 1 {
					bad(dir.pos, "//act:guarded needs exactly one mutex name")
					continue
				}
				mu := dir.args[0]
				// A same-struct mutex must really be one; a name not in the
				// struct refers to an external lock (the owning object's).
				if fields[mu] && !mutexes[mu] {
					bad(dir.pos, "//act:guarded %s: field %s is not a sync.Mutex or sync.RWMutex", mu, mu)
					continue
				}
				for _, name := range f.Names {
					ann.guarded[l.info.Defs[name]] = mu
				}
			case "frozen":
				for _, name := range f.Names {
					ann.frozenFields[l.info.Defs[name]] = true
				}
			case "published":
				for _, name := range f.Names {
					ann.published[l.info.Defs[name]] = true
				}
			case "requires", "exclusive", "freezer", "mutates", "hotpath", "publisher":
				bad(dir.pos, "//act:%s applies to functions, not struct fields", dir.name)
			default:
				bad(dir.pos, "unknown directive //act:%s", dir.name)
			}
		}
	}
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
