package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// The //act: annotation language. Annotations are directive comments (no
// space after the slashes) placed in the doc comment of a function or struct
// field, or as a field's trailing line comment:
//
//	//act:guarded <mu>        field: accessed only under the mutex <mu>
//	//act:requires <mu>       function: runs with <mu> already acquired
//	//act:exclusive           function: operates on a fresh, unshared value;
//	                          lockcheck does not apply inside it
//	//act:frozen              function: its results are frozen (shared with
//	                          immutable snapshots, never written through)
//	                          field: permanently frozen once set
//	//act:freezer             function: the freeze/patch machinery itself;
//	                          frozencheck does not apply inside it
//	//act:mutates <n>         function: writes through its n-th argument
//	                          (0-based; receivers are not counted)
//	//act:hotpath             function: allocation/indirection AST bans plus
//	                          the allocbound escape-analysis gate
//	//act:noalloc             function: allocbound escape-analysis gate only
//	                          (no AST shape bans)
//	//act:published           field: the atomically published snapshot pointer
//	//act:publisher           function: may Store/Swap a //act:published field
//	//act:lock <class>        field: declares a mutex with a module-unique
//	                          lock-order class name (lockorder's vocabulary)
//	//act:pinned              field: deliberately stores a *Snapshot for a
//	                          long-lived structure (snapcheck exemption)
//	//act:refresh             function: deliberately takes fresh snapshots
//	                          (snapcheck's torn-view rule does not charge it)
//	//act:allow-alloc <why>   site comment: the allocation on this (or the
//	                          next) line is accepted, with a reason
//	//act:norecover <why>     site comment: the go statement on this (or the
//	                          next) line deliberately launches a goroutine
//	                          with no recover guard, with a reason
//	//act:alloc-harness <fn>  test-file marker: an AllocsPerRun case covers fn
//	//act:atomic              field: accessed only through sync/atomic (either
//	                          a sync/atomic type or a plain word reached via
//	                          the atomic package functions); atomcheck's
//	                          discipline applies
//	//act:seqlock <class>     field: a seqlock generation word (atomic
//	                          unsigned integer); writers bump it odd/even in
//	                          paired Add(1)s under the named lock class held
//	                          exclusively, readers use the even-stable
//	                          re-check pattern or the class as a fallback
//	//act:seam                function: a declared fault-injection seam; its
//	                          body must contain a fault.Hit/MustHit point
//	//act:ignore-err <why>    site comment: the discarded error on this (or
//	                          the next) line is deliberate, with a reason
//
// The mutex name in guarded/requires is resolved lexically: a function
// "holds mu" when its own body (not a nested goroutine) contains a
// <path>.mu.Lock() call, or when it is annotated //act:requires mu.
// lockorder re-resolves the same names to //act:lock classes, so two
// structs may both name their mutex field "mu" without the analyses
// conflating them.
type annotations struct {
	guarded      map[types.Object]string
	requires     map[types.Object][]string
	exclusive    map[types.Object]bool
	frozenFns    map[types.Object]bool
	frozenFields map[types.Object]bool
	freezer      map[types.Object]bool
	mutates      map[types.Object][]int
	hotpath      map[types.Object]bool
	published    map[types.Object]bool
	publisher    map[types.Object]bool
	locks        map[types.Object]string // mutex field -> lock-order class
	noalloc      map[types.Object]bool
	pinned       map[types.Object]bool
	refresh      map[types.Object]bool
	atomic       map[types.Object]bool   // fields under the atomics discipline
	seqlock      map[types.Object]string // seqlock generation field -> lock class
	seam         map[types.Object]bool   // declared fault-injection seams
	allowAlloc   map[string]string       // "file:line" of the comment -> reason
	norecover    map[string]string       // "file:line" of the comment -> reason
	ignoreErr    map[string]string       // "file:line" of the comment -> reason
}

func newAnnotations() *annotations {
	return &annotations{
		guarded:      map[types.Object]string{},
		requires:     map[types.Object][]string{},
		exclusive:    map[types.Object]bool{},
		frozenFns:    map[types.Object]bool{},
		frozenFields: map[types.Object]bool{},
		freezer:      map[types.Object]bool{},
		mutates:      map[types.Object][]int{},
		hotpath:      map[types.Object]bool{},
		published:    map[types.Object]bool{},
		publisher:    map[types.Object]bool{},
		locks:        map[types.Object]string{},
		noalloc:      map[types.Object]bool{},
		pinned:       map[types.Object]bool{},
		refresh:      map[types.Object]bool{},
		atomic:       map[types.Object]bool{},
		seqlock:      map[types.Object]string{},
		seam:         map[types.Object]bool{},
		allowAlloc:   map[string]string{},
		norecover:    map[string]string{},
		ignoreErr:    map[string]string{},
	}
}

// directive is one parsed //act: comment.
type directive struct {
	name string
	args []string
	pos  ast.Node
}

// parseDirectives extracts //act: directives from a comment group. Directive
// comments are excluded from CommentGroup.Text, so the raw list is scanned.
func parseDirectives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, "//act:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				out = append(out, directive{name: "", pos: c})
				continue
			}
			out = append(out, directive{name: fields[0], args: fields[1:], pos: c})
		}
	}
	return out
}

// collectAnnotations gathers //act: annotations from every module-local
// package the loader has seen, reporting malformed or misplaced directives
// as diagnostics.
func collectAnnotations(l *loader) (*annotations, []diagnostic) {
	ann := newAnnotations()
	var diags []diagnostic
	bad := func(n ast.Node, format string, args ...any) {
		diags = append(diags, diagnostic{pos: l.position(n.Pos()), analyzer: "annotation", msg: fmt.Sprintf(format, args...)})
	}
	for _, p := range l.pkgs {
		if !p.local {
			continue
		}
		for _, f := range p.files {
			// allow-alloc and norecover are site-level comments: they may
			// appear anywhere in a file (typically trailing or directly
			// above the allocation or go statement), so they are collected
			// from the raw comment list by position.
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if rest, ok := strings.CutPrefix(c.Text, "//act:allow-alloc"); ok {
						reason := strings.TrimSpace(rest)
						if reason == "" {
							bad(c, "//act:allow-alloc needs a reason")
							continue
						}
						pos := l.position(c.Pos())
						ann.allowAlloc[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = reason
						continue
					}
					if rest, ok := strings.CutPrefix(c.Text, "//act:norecover"); ok {
						reason := strings.TrimSpace(rest)
						if reason == "" {
							bad(c, "//act:norecover needs a reason")
							continue
						}
						pos := l.position(c.Pos())
						ann.norecover[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = reason
						continue
					}
					if rest, ok := strings.CutPrefix(c.Text, "//act:ignore-err"); ok {
						reason := strings.TrimSpace(rest)
						if reason == "" {
							bad(c, "//act:ignore-err needs a reason")
							continue
						}
						pos := l.position(c.Pos())
						ann.ignoreErr[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = reason
					}
				}
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj := l.info.Defs[d.Name]
					for _, dir := range parseDirectives(d.Doc) {
						applyFuncDirective(ann, obj, dir, bad)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						collectFieldAnnotations(l, ann, st, bad)
					}
				}
			}
		}
	}
	return ann, diags
}

// applyFuncDirective records one function-level directive.
func applyFuncDirective(ann *annotations, obj types.Object, dir directive, bad func(ast.Node, string, ...any)) {
	switch dir.name {
	case "requires":
		if len(dir.args) == 0 {
			bad(dir.pos, "//act:requires needs a mutex name")
			return
		}
		ann.requires[obj] = append(ann.requires[obj], dir.args...)
	case "exclusive":
		ann.exclusive[obj] = true
	case "frozen":
		ann.frozenFns[obj] = true
	case "freezer":
		ann.freezer[obj] = true
	case "mutates":
		if len(dir.args) == 0 {
			bad(dir.pos, "//act:mutates needs an argument index")
			return
		}
		for _, a := range dir.args {
			n, err := strconv.Atoi(a)
			if err != nil || n < 0 {
				bad(dir.pos, "//act:mutates: bad argument index %q", a)
				return
			}
			ann.mutates[obj] = append(ann.mutates[obj], n)
		}
	case "hotpath":
		ann.hotpath[obj] = true
	case "noalloc":
		ann.noalloc[obj] = true
	case "refresh":
		ann.refresh[obj] = true
	case "publisher":
		ann.publisher[obj] = true
	case "seam":
		ann.seam[obj] = true
	case "guarded", "published", "lock", "pinned", "atomic", "seqlock":
		bad(dir.pos, "//act:%s applies to struct fields, not functions", dir.name)
	case "allow-alloc", "norecover", "ignore-err":
		// Collected positionally from the raw comment list; as a doc
		// directive it still suppresses a site on the next line.
	case "alloc-harness":
		bad(dir.pos, "//act:alloc-harness belongs in a _test.go harness file")
	default:
		bad(dir.pos, "unknown directive //act:%s", dir.name)
	}
}

// collectFieldAnnotations records field-level directives of one struct type,
// validating guarded mutex names against the struct's own fields.
func collectFieldAnnotations(l *loader, ann *annotations, st *ast.StructType, bad func(ast.Node, string, ...any)) {
	mutexes := map[string]bool{}
	fields := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			fields[name.Name] = true
			if t := l.typeOf(f.Type); t != nil && isMutex(t) {
				mutexes[name.Name] = true
			}
		}
	}
	for _, f := range st.Fields.List {
		for _, dir := range parseDirectives(f.Doc, f.Comment) {
			switch dir.name {
			case "guarded":
				if len(dir.args) != 1 {
					bad(dir.pos, "//act:guarded needs exactly one mutex name")
					continue
				}
				mu := dir.args[0]
				// A same-struct mutex must really be one; a name not in the
				// struct refers to an external lock (the owning object's).
				if fields[mu] && !mutexes[mu] {
					bad(dir.pos, "//act:guarded %s: field %s is not a sync.Mutex or sync.RWMutex", mu, mu)
					continue
				}
				for _, name := range f.Names {
					ann.guarded[l.info.Defs[name]] = mu
				}
			case "frozen":
				for _, name := range f.Names {
					ann.frozenFields[l.info.Defs[name]] = true
				}
			case "published":
				for _, name := range f.Names {
					ann.published[l.info.Defs[name]] = true
				}
			case "lock":
				if len(dir.args) != 1 {
					bad(dir.pos, "//act:lock needs exactly one class name")
					continue
				}
				for _, name := range f.Names {
					if !mutexes[name.Name] {
						bad(dir.pos, "//act:lock on %s, which is not a sync.Mutex or sync.RWMutex", name.Name)
						continue
					}
					ann.locks[l.info.Defs[name]] = dir.args[0]
				}
			case "pinned":
				for _, name := range f.Names {
					ann.pinned[l.info.Defs[name]] = true
				}
			case "atomic":
				for _, name := range f.Names {
					ann.atomic[l.info.Defs[name]] = true
				}
			case "seqlock":
				if len(dir.args) != 1 {
					bad(dir.pos, "//act:seqlock needs exactly one lock-class name")
					continue
				}
				if t := l.typeOf(f.Type); t == nil || !isAtomicUint(t) {
					bad(dir.pos, "//act:seqlock needs an atomic unsigned integer field (atomic.Uint32 or atomic.Uint64)")
					continue
				}
				for _, name := range f.Names {
					ann.seqlock[l.info.Defs[name]] = dir.args[0]
				}
			case "requires", "exclusive", "freezer", "mutates", "hotpath", "noalloc", "refresh", "publisher", "seam":
				bad(dir.pos, "//act:%s applies to functions, not struct fields", dir.name)
			case "allow-alloc", "norecover", "ignore-err":
				// Site-level; collected positionally.
			case "alloc-harness":
				bad(dir.pos, "//act:alloc-harness belongs in a _test.go harness file")
			default:
				bad(dir.pos, "unknown directive //act:%s", dir.name)
			}
		}
	}
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isAtomicType reports whether t is one of the sync/atomic wrapper types
// (atomic.Bool, atomic.Int64, atomic.Pointer[T], atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isAtomicUint reports whether t is atomic.Uint32 or atomic.Uint64, the only
// types a seqlock generation may have: parity is the protocol, so the word
// must be an unsigned integer bumped through the atomic API.
func isAtomicUint(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		(obj.Name() == "Uint32" || obj.Name() == "Uint64")
}
