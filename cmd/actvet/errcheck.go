package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// errcheck is a stdlib-only unchecked-error pass over the engine packages:
// a call whose final result is an error must not have that error silently
// discarded — as a bare statement, behind a defer (the classic leaked
// Close/Rollback failure on the exit path), behind a go statement (the
// error vanishes with the goroutine), or assigned to the blank identifier.
// //act:ignore-err <reason> on the line (or the line above) is the audited
// escape hatch; the reason is mandatory.
//
// Scope: package main is exempt (the command wrappers report through their
// exit status and os.Stderr), as are fmt's formatted-print family — their
// error is the destination writer's, observed where the writer is flushed
// or closed — and the never-failing bytes.Buffer/strings.Builder methods.
func errcheck(l *loader, p *pkgData, ann *annotations) []diagnostic {
	if p.pkg.Name() == "main" {
		return nil
	}
	var diags []diagnostic
	diag := func(n ast.Node, format string, args ...any) {
		pos := l.position(n.Pos())
		if _, ok := ann.ignoreErr[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]; ok {
			return
		}
		if _, ok := ann.ignoreErr[fmt.Sprintf("%s:%d", pos.Filename, pos.Line-1)]; ok {
			return
		}
		diags = append(diags, diagnostic{pos: pos, analyzer: "errcheck", msg: fmt.Sprintf(format, args...)})
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && l.callReturnsError(call) && !errcheckExempt(l, call) {
					diag(n, "unchecked error: the result of %s is discarded (handle it, or annotate //act:ignore-err <reason>)", callName(l, call))
				}
			case *ast.DeferStmt:
				if l.callReturnsError(n.Call) && !errcheckExempt(l, n.Call) {
					diag(n, "deferred %s discards its error: a failure on the exit path vanishes (capture it in a closure, or annotate //act:ignore-err <reason>)", callName(l, n.Call))
				}
			case *ast.GoStmt:
				if l.callReturnsError(n.Call) && !errcheckExempt(l, n.Call) {
					diag(n, "go %s discards its error along with the goroutine (collect it, or annotate //act:ignore-err <reason>)", callName(l, n.Call))
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok || errcheckExempt(l, call) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						continue
					}
					if resultIsError(l, call, i, len(n.Lhs)) {
						diag(n, "error result of %s assigned to _ (handle it, or annotate //act:ignore-err <reason>)", callName(l, call))
						break
					}
				}
			}
			return true
		})
	}
	return diags
}

// callReturnsError reports whether the call's final result is an error.
func (l *loader) callReturnsError(call *ast.CallExpr) bool {
	t := l.typeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

// resultIsError reports whether the i-th of n assigned results of the call
// is an error.
func resultIsError(l *loader, call *ast.CallExpr, i, n int) bool {
	t := l.typeOf(call)
	if t == nil {
		return false
	}
	tup, ok := t.(*types.Tuple)
	if !ok {
		return n == 1 && i == 0 && isErrorType(t)
	}
	if tup.Len() != n || i >= tup.Len() {
		return false
	}
	return isErrorType(tup.At(i).Type())
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errcheckExempt reports whether the callee belongs to the never-checked
// set: fmt's print family and the infallible bytes.Buffer/strings.Builder
// methods.
func errcheckExempt(l *loader, call *ast.CallExpr) bool {
	callee := l.calleeOf(call)
	if callee == nil {
		return false
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch callee.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// callName renders the called function for a diagnostic.
func callName(l *loader, call *ast.CallExpr) string {
	if callee := l.calleeOf(call); callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				return named.Obj().Name() + "." + callee.Name()
			}
		}
		return callee.Name()
	}
	return "the call"
}
