package actjoin

import (
	"bytes"
	"testing"
)

// fuzzSeedGeoJSON is the shared seed document: one well-formed triangle
// feature, enough to build a non-trivial index.
const fuzzSeedGeoJSON = `{"type":"FeatureCollection","features":[{"type":"Feature","properties":{"name":"tri"},"geometry":{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}}]}`

// FuzzGeoJSON feeds arbitrary bytes to the GeoJSON front door. Malformed
// documents must produce an error, never a panic; documents that parse must
// yield an index whose exact results are a subset of the approximate
// candidate set (the filter may over-approximate but never lose a hit).
func FuzzGeoJSON(f *testing.F) {
	f.Add([]byte(fuzzSeedGeoJSON))
	f.Add([]byte(`{"type":"Polygon","coordinates":[[[8,47],[9,47],[9,48],[8,48],[8,47]]]}`))
	f.Add([]byte(`{"type":"MultiPolygon","coordinates":[[[[0,0],[2,0],[2,2],[0,2],[0,0]]],[[[5,5],[6,5],[6,6],[5,5]]]]}`))
	f.Add([]byte(`{"type":"GeometryCollection"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		ix, names, err := NewIndexFromGeoJSON(data)
		if err != nil {
			return
		}
		snap := ix.Current()
		if snap.NumPolygons() != len(names) {
			t.Fatalf("index has %d polygons but %d names", snap.NumPolygons(), len(names))
		}
		for _, p := range []Point{{Lon: 0.5, Lat: 0.5}, {Lon: 8.5, Lat: 47.5}, {Lon: -170, Lat: -80}} {
			approx := snap.CoversApprox(p)
			for _, id := range snap.Covers(p) {
				if !fuzzContainsID(approx, id) {
					t.Fatalf("exact hit %d at %v missing from approximate candidates %v", id, p, approx)
				}
			}
		}
	})
}

func fuzzContainsID(ids []PolygonID, id PolygonID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// FuzzSerializeRoundTrip feeds arbitrary bytes to the index deserializer.
// Corrupt files must produce an error, never a panic or OOM; files that load
// must re-serialize byte-stably (write → read → write yields identical
// bytes), which is what makes on-disk indexes diffable and cacheable.
func FuzzSerializeRoundTrip(f *testing.F) {
	ix, _, err := NewIndexFromGeoJSON([]byte(fuzzSeedGeoJSON))
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if _, err := ix.Current().WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("ACTJ"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		in, err := ReadIndexFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if _, err := in.Current().WriteTo(&first); err != nil {
			t.Fatalf("serializing loaded index: %v", err)
		}
		again, err := ReadIndexFrom(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a just-written index: %v", err)
		}
		var second bytes.Buffer
		if _, err := again.Current().WriteTo(&second); err != nil {
			t.Fatalf("serializing re-read index: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization is not byte-stable: first write %d bytes, second %d bytes", first.Len(), second.Len())
		}
	})
}
