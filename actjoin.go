// Package actjoin is a main-memory point-polygon join library built on an
// Adaptive Cell Trie (ACT), reproducing Kipf et al., "Adaptive Main-Memory
// Indexing for High-Performance Point-Polygon Joins" (EDBT 2020).
//
// The library indexes a mostly-static set of largely disjoint polygons
// (city neighborhoods, tax zones, geofences) and answers "which polygons
// cover this point" at tens of millions of points per second per core.
//
// Two operating modes mirror the paper's two join algorithms:
//
//   - With a precision bound (WithPrecision), the index refines polygon
//     boundaries until every false positive is within the bound, and
//     queries never perform geometric point-in-polygon (PIP) tests.
//   - Without one, queries are exact: the index identifies most results via
//     true-hit filtering and falls back to PIP tests only for points near
//     polygon boundaries. Train adapts the index to an expected query
//     distribution to make that fallback rare.
//
// # Concurrency model
//
// The API splits reads from writes. An Index is a writer handle: mutations
// (Add, Remove, Train, Apply) build the next version of the index off to
// the side and publish it as an immutable Snapshot with one atomic pointer
// swap. Queries run against a Snapshot obtained from Index.Current; they
// are lock-free, never block on updates, and an in-flight batch join keeps
// one consistent view of the polygon set for its whole run. The query
// methods still present on Index are deprecated forwarders that delegate to
// Current().
//
// Quick start:
//
//	idx, err := actjoin.NewIndex(polygons, actjoin.WithPrecision(4))
//	if err != nil { ... }
//	snap := idx.Current()
//	ids := snap.CoversApprox(actjoin.Point{Lon: -73.98, Lat: 40.75})
package actjoin

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"actjoin/internal/act"
	"actjoin/internal/cellid"
	"actjoin/internal/cellindex"
	"actjoin/internal/cover"
	"actjoin/internal/geom"
	"actjoin/internal/join"
	"actjoin/internal/refs"
	"actjoin/internal/supercover"
)

// Point is a geographic location in degrees.
type Point struct {
	Lon, Lat float64
}

// Ring is a closed polygon ring; the closing vertex must not be repeated.
type Ring []Point

// Polygon is an area with an exterior ring and optional holes.
type Polygon struct {
	Exterior Ring
	Holes    []Ring
}

// PolygonID identifies a polygon by its position in the slice passed to
// NewIndex.
type PolygonID = uint32

// MaxPolygons is the largest indexable polygon count (30-bit ids, as in the
// paper's tagged-entry encoding).
const MaxPolygons = refs.MaxPolygonID + 1

// options collect the build configuration.
type options struct {
	precisionMeters float64
	delta           int
	coveringCells   int
	interiorCells   int
}

// Option configures NewIndex.
type Option func(*options) error

// WithPrecision enables the approximate mode with the given distance bound
// in meters: every point reported for a polygon is inside it or within
// `meters` of it, and approximate queries never run PIP tests. The paper's
// headline configuration is 4 meters.
func WithPrecision(meters float64) Option {
	return func(o *options) error {
		if meters <= 0 || math.IsNaN(meters) || math.IsInf(meters, 0) {
			return fmt.Errorf("actjoin: invalid precision %v", meters)
		}
		o.precisionMeters = meters
		return nil
	}
}

// WithGranularity sets the trie granularity δ — quadtree levels per radix
// level. Valid values are 1, 2 and 4 (ACT1/ACT2/ACT4); the default is 4,
// the paper's fastest configuration.
func WithGranularity(delta int) Option {
	return func(o *options) error {
		if delta != 1 && delta != 2 && delta != 4 {
			return fmt.Errorf("actjoin: granularity must be 1, 2 or 4, got %d", delta)
		}
		o.delta = delta
		return nil
	}
}

// WithCoveringBudget overrides the per-polygon approximation budgets (the
// paper's defaults are 128 covering cells and 256 interior cells).
func WithCoveringBudget(coveringCells, interiorCells int) Option {
	return func(o *options) error {
		if coveringCells < 4 || interiorCells < 0 {
			return fmt.Errorf("actjoin: invalid covering budget %d/%d", coveringCells, interiorCells)
		}
		o.coveringCells = coveringCells
		o.interiorCells = interiorCells
		return nil
	}
}

// Index is the writer handle of a point-polygon join index. It owns the
// mutable build-side state (the super covering) and publishes immutable
// Snapshots that serve all queries.
//
// Concurrency contract: every method of Index is safe for concurrent use.
// Mutations (Add, Remove, Train, Apply) serialize among themselves on an
// internal mutex, rebuild the frozen structures off to the side, and
// publish the result with a single atomic pointer swap — they never block
// queries, and queries never block them. The read path (Current and the
// Snapshot it returns, including the deprecated query forwarders on Index)
// takes no locks.
type Index struct {
	mu  sync.Mutex // serializes writers; never held on any query path
	cur atomic.Pointer[Snapshot]

	// Writer-side state, guarded by mu. polys is copy-on-write: published
	// snapshots share the slice, so the first mutation after a publish
	// replaces it instead of editing it in place (polysShared tracks
	// whether the current slice is aliased by a snapshot). staged records
	// whether any mutation landed since the last publish, so an aborted
	// Apply only pays for a state rebuild when there is something to
	// discard.
	sc          *supercover.SuperCovering
	polys       []*geom.Polygon
	polysShared bool
	staged      bool

	opt            options // immutable after NewIndex
	precisionLevel int     // immutable after NewIndex
}

// NewIndex builds an index over the polygons and publishes its first
// snapshot. Polygon ids are slice positions. The build computes per-polygon
// coverings, merges them into the super covering and freezes the Adaptive
// Cell Trie.
func NewIndex(polygons []Polygon, opts ...Option) (*Index, error) {
	o := options{delta: act.Delta4, coveringCells: 128, interiorCells: 256}
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return nil, err
		}
	}
	if len(polygons) == 0 {
		return nil, errors.New("actjoin: no polygons")
	}
	if len(polygons) > MaxPolygons {
		return nil, fmt.Errorf("actjoin: %d polygons exceed the %d limit", len(polygons), MaxPolygons)
	}

	internal := make([]*geom.Polygon, len(polygons))
	var bound geom.Rect = geom.EmptyRect()
	for i, p := range polygons {
		gp, err := toGeom(p)
		if err != nil {
			return nil, fmt.Errorf("actjoin: polygon %d: %w", i, err)
		}
		internal[i] = gp
		bound = bound.Union(gp.Bound())
	}

	sc := supercover.Build(internal, supercover.Options{
		Covering: cover.Options{MaxCells: o.coveringCells},
		Interior: cover.Options{MaxCells: o.interiorCells, MaxLevel: 20},
	})

	ix := &Index{polys: internal, sc: sc, opt: o}
	if o.precisionMeters > 0 {
		ix.precisionLevel = cellid.LevelForMaxDiagonalMeters(o.precisionMeters, bound.Center().Y)
		sc.RefineToPrecision(internal, ix.precisionLevel)
	}
	ix.publish()
	return ix, nil
}

func toGeom(p Polygon) (*geom.Polygon, error) {
	rings := make([]geom.Ring, 0, 1+len(p.Holes))
	conv := func(r Ring) (geom.Ring, error) {
		out := make(geom.Ring, len(r))
		for i, v := range r {
			if math.IsNaN(v.Lon) || math.IsNaN(v.Lat) ||
				v.Lon < -180 || v.Lon > 180 || v.Lat < -90 || v.Lat > 90 {
				return nil, fmt.Errorf("vertex %d out of range: (%v, %v)", i, v.Lon, v.Lat)
			}
			out[i] = geom.Point{X: v.Lon, Y: v.Lat}
		}
		return out, nil
	}
	ext, err := conv(p.Exterior)
	if err != nil {
		return nil, err
	}
	rings = append(rings, ext)
	for _, h := range p.Holes {
		hr, err := conv(h)
		if err != nil {
			return nil, err
		}
		rings = append(rings, hr)
	}
	return geom.NewPolygon(rings...)
}

// Current returns the most recently published snapshot: a single atomic
// load, safe to call from any goroutine at any rate. The snapshot is
// immutable — hold it for as long as one consistent view is needed, and
// call Current again whenever a fresher one is wanted.
func (ix *Index) Current() *Snapshot { return ix.cur.Load() }

// publish freezes the writer-side state into a new immutable snapshot and
// swaps it in. Callers must hold mu (or have exclusive access to a fresh,
// unshared Index).
func (ix *Index) publish() *Snapshot {
	cells := ix.sc.Cells()
	kvs, table := cellindex.Encode(cells)
	s := &Snapshot{
		polys:          ix.polys,
		cells:          cells,
		tree:           act.Build(kvs, ix.opt.delta),
		table:          table,
		opt:            ix.opt,
		precisionLevel: ix.precisionLevel,
	}
	ix.polysShared = true // the snapshot aliases ix.polys from here on
	ix.staged = false
	ix.cur.Store(s)
	return s
}

// mutablePolys returns ix.polys ready for in-place mutation, copying it
// first when a published snapshot still aliases it. extraCap reserves
// append room for the copy.
func (ix *Index) mutablePolys(extraCap int) []*geom.Polygon {
	if ix.polysShared {
		polys := make([]*geom.Polygon, len(ix.polys), len(ix.polys)+extraCap)
		copy(polys, ix.polys)
		ix.polys = polys
		ix.polysShared = false
	}
	return ix.polys
}

// restore rebuilds the writer-side state from the currently published
// snapshot, discarding uncommitted mutations. Callers must hold mu.
func (ix *Index) restore() {
	s := ix.cur.Load()
	sc := supercover.New()
	for _, c := range s.cells {
		sc.Insert(c.ID, c.Refs)
	}
	ix.sc = sc
	ix.polys = s.polys
	ix.polysShared = true
	ix.staged = false
}

// Precision returns the configured precision bound in meters, or 0 when the
// index is exact-only.
func (ix *Index) Precision() float64 { return ix.opt.precisionMeters }

// Covers returns the ids of all polygons covering p, exactly.
//
// Deprecated: use Current().Covers. This forwarder queries whatever
// snapshot happens to be published at call time; consecutive calls may see
// different snapshots when writers are active.
func (ix *Index) Covers(p Point) []PolygonID { return ix.Current().Covers(p) }

// CoversApprox returns polygon ids without any PIP test.
//
// Deprecated: use Current().CoversApprox.
func (ix *Index) CoversApprox(p Point) []PolygonID { return ix.Current().CoversApprox(p) }

// CoversBatch answers many point queries in one call.
//
// Deprecated: use Current().CoversBatch.
func (ix *Index) CoversBatch(points []Point, opt QueryOptions) [][]PolygonID {
	return ix.Current().CoversBatch(points, opt)
}

// JoinCount counts points per polygon through the batch probe pipeline.
//
// Deprecated: use Current().JoinCount.
func (ix *Index) JoinCount(points []Point, opt QueryOptions) JoinResult {
	return ix.Current().JoinCount(points, opt)
}

// Join counts points per polygon.
//
// Deprecated: use Current().JoinCount with QueryOptions{Exact, Threads}.
func (ix *Index) Join(points []Point, exact bool, threads int) JoinResult {
	return ix.Current().Join(points, exact, threads)
}

// Stats returns structural statistics of the published snapshot.
//
// Deprecated: use Current().Stats.
func (ix *Index) Stats() Stats { return ix.Current().Stats() }

// Removed reports whether the id was removed.
//
// Deprecated: use Current().Removed.
func (ix *Index) Removed(id PolygonID) bool { return ix.Current().Removed(id) }

// probeBufs recycles the per-call conversion arrays. They live only for the
// duration of one batch call (join results never reference them), and at
// high call rates their allocation volume alone would drive the GC mark
// frequency up.
type probeBufs struct {
	pts   []geom.Point
	cells []cellid.CellID
}

var probeBufPool sync.Pool

// toProbeParallel is the probe-input conversion chunked across workers —
// the cell conversion is a pure per-point Hilbert encoding and dominates
// batch latency at high point counts. Approximate-mode joins never touch
// the geometry, so the internal point array is skipped entirely (needPts
// false). release returns the buffers to the pool; call it once no join is
// using them.
func toProbeParallel(points []Point, threads int, needPts bool) ([]geom.Point, []cellid.CellID, func()) {
	n := len(points)
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if chunks := n / 4096; threads > chunks {
		threads = chunks // conversion is ~100ns/point; don't spawn for less
	}
	bufs, _ := probeBufPool.Get().(*probeBufs)
	if bufs == nil {
		bufs = &probeBufs{}
	}
	var pts []geom.Point
	if needPts {
		if cap(bufs.pts) >= n {
			pts = bufs.pts[:n]
		} else {
			pts = make([]geom.Point, n)
			bufs.pts = pts
		}
	}
	var cells []cellid.CellID
	if cap(bufs.cells) >= n {
		cells = bufs.cells[:n]
	} else {
		cells = make([]cellid.CellID, n)
		bufs.cells = cells
	}
	release := func() { probeBufPool.Put(bufs) }
	convert := func(begin, end int) {
		for i := begin; i < end; i++ {
			gp := geom.Point{X: points[i].Lon, Y: points[i].Lat}
			if needPts {
				pts[i] = gp
			}
			cells[i] = cellid.FromPoint(gp)
		}
	}
	if threads <= 1 {
		convert(0, n)
		return pts, cells, release
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for begin := 0; begin < n; begin += chunk {
		end := begin + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(b, e int) {
			defer wg.Done()
			convert(b, e)
		}(begin, end)
	}
	wg.Wait()
	return pts, cells, release
}

func toJoinResult(res join.Result) JoinResult {
	return JoinResult{
		Counts:         res.Counts,
		PIPTests:       res.PIPTests,
		STHPercent:     res.STHPercent(),
		CacheHits:      res.CacheHits,
		Duration:       res.Duration,
		ThroughputMpts: res.ThroughputMpts(),
	}
}
