package actjoin

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"actjoin/internal/act"
	"actjoin/internal/cellid"
	"actjoin/internal/cellindex"
	"actjoin/internal/cover"
	"actjoin/internal/fault"
	"actjoin/internal/geom"
	"actjoin/internal/join"
	"actjoin/internal/refs"
	"actjoin/internal/supercover"
)

// Point is a geographic location in degrees.
type Point struct {
	Lon, Lat float64
}

// Ring is a closed polygon ring; the closing vertex must not be repeated.
type Ring []Point

// Polygon is an area with an exterior ring and optional holes.
type Polygon struct {
	Exterior Ring
	Holes    []Ring
}

// PolygonID identifies a polygon by its position in the slice passed to
// NewIndex.
type PolygonID = uint32

// MaxPolygons is the largest indexable polygon count (30-bit ids, as in the
// paper's tagged-entry encoding).
const MaxPolygons = refs.MaxPolygonID + 1

// options collect the build configuration.
type options struct {
	precisionMeters float64
	delta           int
	coveringCells   int
	interiorCells   int
	fullPublish     bool
	walkRemoval     bool
	noBgCompact     bool
}

// Option configures NewIndex.
type Option func(*options) error

// WithPrecision enables the approximate mode with the given distance bound
// in meters: every point reported for a polygon is inside it or within
// `meters` of it, and approximate queries never run PIP tests. The paper's
// headline configuration is 4 meters.
func WithPrecision(meters float64) Option {
	return func(o *options) error {
		if meters <= 0 || math.IsNaN(meters) || math.IsInf(meters, 0) {
			return fmt.Errorf("actjoin: invalid precision %v", meters)
		}
		o.precisionMeters = meters
		return nil
	}
}

// WithGranularity sets the trie granularity δ — quadtree levels per radix
// level. Valid values are 1, 2 and 4 (ACT1/ACT2/ACT4); the default is 4,
// the paper's fastest configuration.
func WithGranularity(delta int) Option {
	return func(o *options) error {
		if delta != 1 && delta != 2 && delta != 4 {
			return fmt.Errorf("actjoin: granularity must be 1, 2 or 4, got %d", delta)
		}
		o.delta = delta
		return nil
	}
}

// WithIncrementalPublish controls how mutations freeze their snapshot. When
// enabled (the default), a publish patches the previous snapshot: only the
// dirty subtrees are re-frozen, re-encoded and rebuilt in the trie arena, so
// publish latency is proportional to the mutation, not to the index; the
// writer falls back to a full rebuild automatically when the dirty footprint
// or the accumulated patch garbage crosses its thresholds. Disabling it
// forces the pre-incremental behaviour — a full freeze on every publish —
// and exists for benchmarking the two paths against each other and as an
// operational escape hatch. Query results are identical either way.
func WithIncrementalPublish(enabled bool) Option {
	return func(o *options) error {
		o.fullPublish = !enabled
		return nil
	}
}

// WithBackgroundCompaction controls how the garbage that incremental
// publishes accumulate gets compacted. When enabled (the default), crossing
// a garbage threshold kicks off a background goroutine that rebuilds the
// frozen structures from the current snapshot with no writer lock held,
// while the writer keeps patching (up to hard caps); the finished rebuild is
// reconciled with the publishes that happened meanwhile and swapped in under
// the writer mutex. Publish latency then stays bounded by the mutation even
// across compactions. Disabling it forces the pre-compactor behaviour — a
// stop-the-writer full rebuild at every threshold crossing (~hundreds of
// milliseconds at large coverings) — and exists for benchmarking, as the
// differential-test reference, and as an operational escape hatch. Published
// snapshots are byte-identical either way.
func WithBackgroundCompaction(enabled bool) Option {
	return func(o *options) error {
		o.noBgCompact = !enabled
		return nil
	}
}

// WithWalkRemoval controls how Remove locates a polygon's cells. When
// disabled (the default), removal descends only the cells recorded in the
// writer's per-polygon directory, making Remove — and the incremental
// publish that follows it — O(polygon footprint). Enabling it forces the
// pre-directory behaviour, a full walk of the super covering's quadtree on
// every Remove; it exists for benchmarking the two paths against each other
// and as an operational escape hatch. Results, published snapshots and dirty
// accounting are identical either way.
func WithWalkRemoval(enabled bool) Option {
	return func(o *options) error {
		o.walkRemoval = enabled
		return nil
	}
}

// WithCoveringBudget overrides the per-polygon approximation budgets (the
// paper's defaults are 128 covering cells and 256 interior cells).
func WithCoveringBudget(coveringCells, interiorCells int) Option {
	return func(o *options) error {
		if coveringCells < 4 || interiorCells < 0 {
			return fmt.Errorf("actjoin: invalid covering budget %d/%d", coveringCells, interiorCells)
		}
		o.coveringCells = coveringCells
		o.interiorCells = interiorCells
		return nil
	}
}

// Index is the writer handle of a point-polygon join index. It owns the
// mutable build-side state (the super covering) and publishes immutable
// Snapshots that serve all queries.
//
// Concurrency contract: every method of Index is safe for concurrent use.
// Mutations (Add, Remove, Train, Apply) serialize among themselves on an
// internal mutex, rebuild the frozen structures off to the side, and
// publish the result with a single atomic pointer swap — they never block
// queries, and queries never block them. The read path (Current and the
// Snapshot it returns, including the deprecated query forwarders on Index)
// takes no locks.
type Index struct {
	noCopy noCopy

	// mu serializes writers; it is never held on any query path.
	mu sync.Mutex //act:lock mu

	//act:published
	//act:atomic
	cur atomic.Pointer[Snapshot]

	// Writer-side state. polys is copy-on-write: published snapshots share
	// the slice, so the first mutation after a publish replaces it instead
	// of editing it in place (polysShared tracks whether the current slice
	// is aliased by a snapshot). staged records whether any mutation landed
	// since the last publish, so an aborted Apply only pays for a state
	// rebuild when there is something to discard.
	sc          *supercover.SuperCovering //act:guarded mu
	polys       []*geom.Polygon           //act:guarded mu
	polysShared bool                      //act:guarded mu
	staged      bool                      //act:guarded mu

	// enc carries the shared lookup table across incremental publishes
	// (garbage-tracked, compacted on full rebuilds and replaced wholesale
	// when a background compaction lands); kvScratch recycles the
	// per-publish dirty-region encoding buffer. patched/full count the
	// publishes each path served (diagnostics, read under mu).
	enc       *cellindex.Encoder   //act:guarded mu
	kvScratch []cellindex.KeyEntry //act:guarded mu
	patched   int                  //act:guarded mu
	full      int                  //act:guarded mu

	// compacting is the in-flight background compaction, nil when none (see
	// compaction.go). The counters track cycle starts and landings. The
	// compactor goroutine takes mu to land its result.
	compacting         *compaction //act:guarded mu
	compactionsStarted int         //act:guarded mu
	compactionsLanded  int         //act:guarded mu

	// Failure-domain state (see compaction.go for the containment design).
	// closed marks a Close()d index: mutations fail with ErrClosed, no new
	// compactions start. fullNext forces the next publish down the full
	// freeze after a failed publish left the encoder's table torn — the
	// full path rebuilds it to consistency from scratch. The counters feed
	// PublishStats.
	closed          bool //act:guarded mu
	fullNext        bool //act:guarded mu
	publishPanics   int  //act:guarded mu
	reconcileAborts int  //act:guarded mu
	replayPoisoned  int  //act:guarded mu

	// Compactor failure bookkeeping is atomic, not mu-guarded, on purpose:
	// the goroutine records failures while a writer may be blocked on the
	// build (the hard-cap wait on c.done) holding mu, so the failure path
	// must stay lock-free (see noteCompactorFailure). compactorWG tracks
	// the goroutine itself for Close.
	compactionsFailed     atomic.Int64               //act:atomic
	consecCompactFailures atomic.Int64               //act:atomic
	quarantined           atomic.Pointer[quarantine] //act:atomic
	compactorWG           sync.WaitGroup

	// Test hooks (same-package tests only): holdCompaction, when non-nil,
	// parks every finished compaction until the channel is closed, so tests
	// can deterministically observe the pending-ready state; failPatches
	// forces the next n patch attempts to abort after staging, exercising
	// the encoder rollback path; compactRetryBase (0 = default) shortens
	// the compactor's retry backoff so failure tests run fast.
	holdCompaction   chan struct{} //act:guarded mu
	failPatches      int           //act:guarded mu
	compactRetryBase time.Duration //act:guarded mu

	opt            options // immutable after NewIndex
	precisionLevel int     // immutable after NewIndex
}

// noCopy triggers go vet's copylocks analyzer on by-value copies of the
// struct embedding it. It has no runtime effect.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// NewIndex builds an index over the polygons and publishes its first
// snapshot. Polygon ids are slice positions. The build computes per-polygon
// coverings, merges them into the super covering and freezes the Adaptive
// Cell Trie.
//
//act:exclusive
func NewIndex(polygons []Polygon, opts ...Option) (*Index, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if len(polygons) == 0 {
		return nil, errors.New("actjoin: no polygons")
	}
	if len(polygons) > MaxPolygons {
		return nil, fmt.Errorf("actjoin: %d polygons exceed the %d limit", len(polygons), MaxPolygons)
	}

	internal := make([]*geom.Polygon, len(polygons))
	var bound geom.Rect = geom.EmptyRect()
	for i, p := range polygons {
		gp, err := toGeom(p)
		if err != nil {
			return nil, fmt.Errorf("actjoin: polygon %d: %w", i, err)
		}
		internal[i] = gp
		bound = bound.Union(gp.Bound())
	}

	sc := supercover.Build(internal, supercover.Options{
		Covering: cover.Options{MaxCells: o.coveringCells},
		Interior: cover.Options{MaxCells: o.interiorCells, MaxLevel: 20},
	})
	sc.SetWalkRemoval(o.walkRemoval)

	ix := &Index{polys: internal, sc: sc, opt: o}
	if o.precisionMeters > 0 {
		ix.precisionLevel = cellid.LevelForMaxDiagonalMeters(o.precisionMeters, bound.Center().Y)
		sc.RefineToPrecision(internal, ix.precisionLevel)
	}
	if _, err := ix.publish(); err != nil {
		return nil, err
	}
	return ix, nil
}

// buildOptions folds the option list over the package defaults (shared by
// NewIndex and NewShardedIndex).
func buildOptions(opts []Option) (options, error) {
	o := options{delta: act.Delta4, coveringCells: 128, interiorCells: 256}
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return options{}, err
		}
	}
	return o, nil
}

func toGeom(p Polygon) (*geom.Polygon, error) {
	rings := make([]geom.Ring, 0, 1+len(p.Holes))
	conv := func(r Ring) (geom.Ring, error) {
		out := make(geom.Ring, len(r))
		for i, v := range r {
			if math.IsNaN(v.Lon) || math.IsNaN(v.Lat) ||
				v.Lon < -180 || v.Lon > 180 || v.Lat < -90 || v.Lat > 90 {
				return nil, fmt.Errorf("vertex %d out of range: (%v, %v)", i, v.Lon, v.Lat)
			}
			out[i] = geom.Point{X: v.Lon, Y: v.Lat}
		}
		return out, nil
	}
	ext, err := conv(p.Exterior)
	if err != nil {
		return nil, err
	}
	rings = append(rings, ext)
	for _, h := range p.Holes {
		hr, err := conv(h)
		if err != nil {
			return nil, err
		}
		rings = append(rings, hr)
	}
	return geom.NewPolygon(rings...)
}

// Current returns the most recently published snapshot: a single atomic
// load, safe to call from any goroutine at any rate. The snapshot is
// immutable — hold it for as long as one consistent view is needed, and
// call Current again whenever a fresher one is wanted.
func (ix *Index) Current() *Snapshot { return ix.cur.Load() }

// Publish thresholds: a patch is only attempted while the mutation's dirty
// footprint stays a small fraction of the index and while the garbage that
// patching accumulates (orphaned trie nodes, tombstoned lookup-table
// records) stays below its compaction triggers. Crossing a garbage trigger
// starts a background compaction (the default) or falls back to an inline
// rebuild (WithBackgroundCompaction(false)); while a compaction is in
// flight the writer keeps patching up to the hard caps in compaction.go.
const (
	publishMaxDirtyFraction = 0.25 // dirty cells vs previous snapshot cells
	arenaMaxGarbageFraction = 0.25 // orphaned arena slots before compaction
	tableMaxGarbageFraction = 0.50 // tombstoned table words before compaction
)

// publish freezes the writer-side state into a new immutable snapshot and
// swaps it in; //act:requires states the calling contract (constructors
// owning a fresh, unshared Index are covered by //act:exclusive).
//
// In steady state the freeze is incremental: the covering reports the dirty
// subtree roots of the staged mutations, and the new snapshot is assembled
// by patching the previous one — clean cell runs are spliced by reference,
// only dirty regions are re-emitted and re-encoded, and the trie arena is
// copied flat and rebuilt only under the dirty roots. The full rebuild
// remains the fallback for bulk mutations (including the first publish) and
// for whatever the incremental paths — patching and background compaction —
// cannot absorb.
//
// Failure domain: both paths run under panic guards. A panic in the
// incremental machinery falls back to the full freeze; a panic in the full
// freeze itself rewinds the writer to the published snapshot (discarding
// the staged mutations), replaces the possibly-torn encoder, and returns
// the error — the published snapshot is never replaced by partial state,
// and the writer stays usable.
//
//act:requires mu
//act:publisher
func (ix *Index) publish() (*Snapshot, error) {
	if ix.enc == nil {
		ix.enc = cellindex.NewEncoder()
	}
	prev := ix.cur.Load()
	roots, all := ix.sc.TakeDirty()
	if c := ix.compacting; c != nil {
		// Whatever this publish changes must be re-applied onto the fresh
		// base before the in-flight compaction may land.
		c.addReplay(roots, all)
	}
	var s *Snapshot
	if prev != nil && !all && !ix.opt.fullPublish && !ix.fullNext {
		s = ix.publishIncrementalGuarded(prev, roots)
	}
	if s == nil {
		ix.abandonCompactionLocked()
		var err error
		if s, err = ix.publishFullGuarded(); err != nil {
			ix.recoverFailedPublish(prev, roots, all)
			return nil, err
		}
		ix.full++
		ix.fullNext = false
	} else {
		ix.patched++
	}
	ix.polysShared = true // the snapshot aliases ix.polys from here on
	ix.staged = false
	ix.cur.Store(s)
	return s, nil
}

// publishIncrementalGuarded runs the incremental publish under a panic
// guard: a panic anywhere in the patch machinery — injected or real — is
// recovered and reported as "no incremental result", which sends the caller
// down the full-freeze path. No explicit journal rollback happens here: the
// encoder's accounting may be torn mid-patch, but the full freeze's
// EncodeFrozen resets the encoder (table, refcounts and journal) wholesale
// before reusing it, and a failed full freeze replaces the encoder
// entirely. The arena writes of the aborted patch are appends past every
// published tree's length, so concurrent readers never see them.
//
//act:requires mu
func (ix *Index) publishIncrementalGuarded(prev *Snapshot, roots []cellid.CellID) (s *Snapshot) {
	defer func() {
		if r := recover(); r != nil {
			ix.publishPanics++
			s = nil
		}
	}()
	return ix.publishIncremental(prev, roots)
}

// publishFullGuarded runs the inline full freeze under a panic guard,
// converting a recovered panic into an error for the caller to surface.
// Nothing published is touched before the guarded section completes: the
// snapshot is assembled from fresh buffers and only stored by publish()
// after a nil error.
//
//act:requires mu
//act:seam
func (ix *Index) publishFullGuarded() (s *Snapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			ix.publishPanics++
			s, err = nil, fmt.Errorf("actjoin: publish failed: %v", r)
		}
	}()
	fault.MustHit(fault.FullFreeze)
	// The snapshot takes ownership of the frozen cells (via the rope),
	// so the full path allocates a fresh, exactly-sized buffer; only the
	// patched path amortizes freeze allocations (dirty-sized buffers,
	// clean runs spliced by reference). EncodeFrozen, not EncodeAll: the
	// freeze's reference lists go straight into the new snapshot, and
	// EncodeAll would re-sort them in place — harmless today only because
	// they are not published yet, but a write through frozen state all the
	// same.
	cells := ix.sc.Cells()
	kvs := ix.enc.EncodeFrozen(cells)
	return &Snapshot{
		polys:          ix.polys,
		cells:          ropeFromCells(cells),
		tree:           act.Build(kvs, ix.opt.delta),
		table:          ix.enc.Table().Freeze(),
		opt:            ix.opt,
		precisionLevel: ix.precisionLevel,
	}, nil
}

// recoverFailedPublish rewinds the writer after a publish that produced no
// snapshot on any path. The published snapshot was never replaced, so
// readers saw nothing; the writer-side covering is reset to match it using
// the dirty roots captured before the attempt (the marks themselves were
// already consumed by TakeDirty, so restore() — which re-takes them — must
// not be used here). The encoder's table may be torn mid-encode, so it is
// replaced, and fullNext routes the next publish through the full freeze,
// which rebuilds consistent encoder state from scratch.
//
//act:requires mu
func (ix *Index) recoverFailedPublish(prev *Snapshot, roots []cellid.CellID, all bool) {
	ix.enc = cellindex.NewEncoder()
	ix.fullNext = true
	if prev == nil {
		return // first publish: the constructor surfaces the error, the index is never handed out
	}
	ix.resetToSnapshot(prev, roots, all)
}

// publishIncremental serves one publish without a full rebuild, choosing
// among patching prev, starting a background compaction, and landing an
// in-flight one. It returns nil only when every incremental avenue is
// exhausted and the caller must rebuild inline.
//
//act:requires mu
func (ix *Index) publishIncremental(prev *Snapshot, roots []cellid.CellID) *Snapshot {
	if len(roots) == 0 {
		// Nothing structural changed (e.g. a transaction that only touched
		// tombstones, or a no-op Train): reuse the frozen state wholesale,
		// publishing only the new polygon slice.
		return ix.patchSnapshot(prev, ix.enc, nil, 0)
	}
	c := ix.compacting
	arenaCap, tableCap := arenaMaxGarbageFraction, tableMaxGarbageFraction
	if c != nil {
		// A compaction is already rebuilding: keep patching past the soft
		// thresholds, bounded by the hard caps. (Rope fragmentation needs no
		// hard cap of its own — the splice tolerates high run counts and
		// maxCellRuns bounds it with an inline flatten as the last resort.)
		arenaCap, tableCap = arenaHardGarbageFraction, tableHardGarbageFraction
	}
	if prev.tree.GarbageRatio() > arenaCap || ix.enc.GarbageRatio() > tableCap ||
		(c == nil && !ix.bgCompactionOffLocked() && len(prev.cells.runs) > ropeCompactRuns) {
		switch {
		case c != nil && c.replayAll:
			// The in-flight compaction is already poisoned: waiting for its
			// build would buy nothing (reconcile must fail). Abandon it and
			// rebuild inline.
			return nil
		case c != nil:
			// Hard cap: patching may not outrun the compactor any further.
			// Its build is already under way and needs no lock, so waiting
			// for it and landing it here is bounded by the build's remaining
			// time — never worse than the inline rebuild it replaces. (The
			// wait holds mu, which is why the compactor's failure path is
			// lock-free: done closes on every outcome, including quarantine,
			// and a nil result below falls through to the inline rebuild.)
			<-c.done
			return ix.reconcileLocked(c)
		case ix.bgCompactionOffLocked():
			return nil // compact inline via the full rebuild
		default:
			// Soft threshold: publish this mutation as an ordinary patch and
			// compact from the resulting snapshot in the background.
			s := ix.patchSnapshot(prev, ix.enc, roots, publishMaxDirtyFraction)
			if s == nil {
				return nil
			}
			ix.startCompactionLocked(s)
			return s
		}
	}
	s := ix.patchSnapshot(prev, ix.enc, roots, publishMaxDirtyFraction)
	if s == nil && c != nil && !c.replayAll {
		// The frozen layout (or the dirty budget) refused the patch. With a
		// (non-poisoned) compaction in flight the fallback is deferred to it
		// instead of rebuilding inline: wait for the build and reconcile —
		// the fresh base often absorbs what the stale layout could not. The
		// aborted patch's encoder staging was rolled back by patchSnapshot,
		// so the live table's accounting stays exact however long the
		// fallback takes to land.
		<-c.done
		return ix.reconcileLocked(c)
	}
	return s
}

// bgCompactionOffLocked reports whether background compaction is
// unavailable — disabled by option, quarantined after repeated failures, or
// the index is closed. Everywhere it is true the index behaves like
// WithBackgroundCompaction(false): threshold crossings compact inline.
//
//act:requires mu
func (ix *Index) bgCompactionOffLocked() bool {
	return ix.opt.noBgCompact || ix.closed || ix.quarantined.Load() != nil
}

// patchSnapshot assembles a snapshot of the current writer state by patching
// base with the dirty regions under roots, re-encoding through enc (the
// encoder that produced base's entries: the live encoder when base is the
// previous snapshot, the fresh one when base is a compaction result being
// reconciled). maxDirtyFraction budgets the patch against base's size. It
// returns nil when the patch cannot (or should not) be applied — the
// encoder's staged work is rolled back exactly, so any fallback may be
// deferred indefinitely without leaking table garbage.
//
//act:requires mu
//act:freezer
//act:seam
func (ix *Index) patchSnapshot(base *Snapshot, enc *cellindex.Encoder, roots []cellid.CellID, maxDirtyFraction float64) *Snapshot {
	if len(roots) == 0 {
		return &Snapshot{
			polys:          ix.polys,
			cells:          base.cells,
			tree:           base.tree,
			table:          base.table,
			opt:            ix.opt,
			precisionLevel: ix.precisionLevel,
		}
	}
	// Bail before any splice or encoder work when the regions' footprint
	// alone disqualifies a patch — bulk mutations should pay for one full
	// rebuild, not for a discarded patch on top of it. (The emitted side is
	// only known after the splice; the check below re-tests it.)
	maxDirty := int(maxDirtyFraction * float64(base.cells.Len()))
	if len(roots) > mergeRootsMin {
		// mergePatchRoots counts every region it emits, so its estimate
		// doubles as the budget pre-check.
		var preDirtyOld int
		roots, preDirtyOld = mergePatchRoots(base.cells, roots, maxDirty)
		if preDirtyOld > maxDirty {
			return nil
		}
	} else {
		preDirtyOld := 0
		for _, r := range roots {
			preDirtyOld += base.cells.countRange(r.RangeMin(), r.RangeMax())
			if preDirtyOld > maxDirty {
				return nil
			}
		}
	}

	// Splice the new cell rope: clean runs come over from the base snapshot
	// as subslices (reference lists shared — both sides are immutable),
	// dirty regions are re-emitted from the writer tree into one fresh
	// buffer. In the same pass the encoder releases every replaced entry
	// (the base tree maps any leaf of a cell back to its entry) and
	// re-encodes the regions' new cells, journaled between Begin and
	// Commit/Rollback so an abort restores the accounting exactly.
	enc.Begin()
	abort := func() *Snapshot {
		enc.Rollback()
		return nil
	}
	newCells := &cellRope{}
	cur := ropeCursor{rope: base.cells}
	dirtyBuf := make([]supercover.Cell, 0, 256)
	kvbuf := ix.kvScratch[:0]
	regions := make([]act.PatchRegion, len(roots))
	dirtyOld, dirtyNew := 0, 0
	for ri, r := range roots {
		if fault.Hit(fault.RopeSplice) != nil {
			return abort() // injected splice failure: ordinary patch abort
		}
		lo, hi := r.RangeMin(), r.RangeMax()
		if last := cur.copyBefore(lo, newCells); last != nil && last.ID.RangeMax() >= lo {
			// A clean cell straddles the region boundary — the dirty-tracking
			// invariant should make this impossible; rebuild to be safe.
			return abort()
		}
		dirtyOld += cur.skipThrough(hi, func(c supercover.Cell) {
			enc.Release(base.tree.Find(c.ID.RangeMin()))
		})
		start := len(dirtyBuf)
		var ok bool
		dirtyBuf, ok = ix.sc.AppendRegion(dirtyBuf, r)
		if !ok {
			return abort()
		}
		// Not capacity-capped: adjacent regions emit contiguously into
		// dirtyBuf and appendRun merges their rope runs. The buffer is owned
		// by the snapshot from here on (fresh per publish, never recycled).
		region := dirtyBuf[start:len(dirtyBuf)]
		newCells.appendRun(region)
		dirtyNew += len(region)
		kvStart := len(kvbuf)
		kvbuf = enc.AppendCells(kvbuf, region)
		regions[ri] = act.PatchRegion{Root: r, KVs: kvbuf[kvStart:len(kvbuf):len(kvbuf)]}
	}
	cur.copyRest(newCells)
	ix.kvScratch = kvbuf[:0]

	dirty := dirtyOld
	if dirtyNew > dirty {
		dirty = dirtyNew
	}
	if dirty > maxDirty {
		return abort() // the emitted side grew too large for a patch to pay off
	}
	if ix.failPatches > 0 {
		ix.failPatches-- // test hook: force an abort after staging
		return abort()
	}

	tree, ok := base.tree.Patch(regions, newCells.Len())
	if !ok {
		return abort()
	}
	enc.Commit()
	// Splice fragmentation: with the background compactor on, crossing
	// ropeCompactRuns starts a compaction (whose result is a single run)
	// and the inline flatten is only the distant last resort; with it off
	// (by option, quarantine or Close), flatten at the old pre-compactor
	// bound so the degraded index really behaves like the escape hatch.
	flattenAt := maxCellRuns
	if ix.bgCompactionOffLocked() {
		flattenAt = ropeCompactRuns
	}
	if len(newCells.runs) > flattenAt {
		newCells = newCells.flatten()
	}
	return &Snapshot{
		polys:          ix.polys,
		cells:          newCells,
		tree:           tree,
		table:          enc.Table().Freeze(),
		opt:            ix.opt,
		precisionLevel: ix.precisionLevel,
	}
}

// mergeRootsMin is the dirty-root count below which a patch keeps the roots
// as-is: merging pays off when a mutation shatters into hundreds of tiny
// regions, not for the handful a small edit produces.
const mergeRootsMin = 32

// mergePatchRoots greedily absorbs runs of spatially adjacent dirty roots
// into their common ancestor, as long as the clean cells the coarser region
// re-emits stay a small multiple of the dirty ones. A single Add at a fine
// precision shatters into hundreds of tiny regions (one per covering cell);
// patching them individually fragments the cell rope by ~2 runs each and
// pays per-region patch overhead, while their common ancestors cover the
// same dirt in a handful of regions. Re-emitting a clean cell is the
// identity (same bytes, same encoder record via dedup), so merging changes
// patch cost, never results. Roots arrive sorted and disjoint (CoalesceRoots
// order) and leave the same way; emitted is the total cell count of the
// returned regions (the caller's budget pre-check, already computed here).
func mergePatchRoots(base *cellRope, roots []cellid.CellID, maxDirty int) (merged []cellid.CellID, emitted int) {
	count := func(c cellid.CellID) int { return base.countRange(c.RangeMin(), c.RangeMax()) }
	out := make([]cellid.CellID, 0, len(roots))
	var lastMax cellid.CellID // range end of the last emitted group
	total := 0                // emitted cells across closed groups
	cur := roots[0]
	curCount := count(cur)
	dirty := curCount
	for _, r := range roots[1:] {
		if cur.Contains(r) {
			continue
		}
		rc := count(r)
		if lca, ok := cellid.CommonAncestor(cur, r); ok {
			// The level-0 guard keeps a merged region from swallowing a
			// whole face (which the frozen trie layout would refuse); the
			// lastMax guard keeps the coarser ancestor from reaching back
			// over the previously emitted group (regions must stay
			// disjoint); the remaining guards bound the re-emitted clean
			// cells per group, per merged region, and across the whole patch
			// — merging must never turn a patchable publish into a
			// budget-exceeded rebuild.
			if lc := count(lca); lca.Level() > 0 && lca.RangeMin() > lastMax &&
				lc <= 4*(dirty+rc)+64 && lc <= maxDirty/8 && total+lc <= maxDirty/2 {
				cur, curCount, dirty = lca, lc, dirty+rc
				continue
			}
		}
		out = append(out, cur)
		total += curCount
		lastMax = cur.RangeMax()
		cur, curCount, dirty = r, rc, rc
	}
	return append(out, cur), total + curCount
}

// mutablePolys returns ix.polys ready for in-place mutation, copying it
// first when a published snapshot still aliases it. extraCap reserves
// append room for the copy.
//
//act:requires mu
func (ix *Index) mutablePolys(extraCap int) []*geom.Polygon {
	if ix.polysShared {
		polys := make([]*geom.Polygon, len(ix.polys), len(ix.polys)+extraCap)
		copy(polys, ix.polys)
		ix.polys = polys
		ix.polysShared = false
	}
	return ix.polys
}

// restore rewinds the writer-side state to the currently published
// snapshot, discarding uncommitted mutations.
//
// The undo is scoped by the same dirty tracking that drives incremental
// publishes: only the staged subtree roots are detached and re-filled from
// the snapshot's frozen cells, so aborting a transaction costs O(mutation)
// instead of re-inserting every frozen cell through conflict resolution.
// Bulk mutations (or a region the splice cannot express) fall back to the
// full rebuild.
//
//act:requires mu
func (ix *Index) restore() {
	s := ix.cur.Load()
	roots, all := ix.sc.TakeDirty()
	ix.resetToSnapshot(s, roots, all)
}

// resetToSnapshot rewinds the writer-side state to the snapshot s, given
// the dirty roots describing how the covering diverged from it. The caller
// has already consumed the dirty marks (TakeDirty) — transaction aborts
// take them here in restore, failed publishes captured them before the
// attempt.
//
//act:requires mu
func (ix *Index) resetToSnapshot(s *Snapshot, roots []cellid.CellID, all bool) {
	if all || !ix.restoreRegions(s, roots) {
		// Re-inserting the frozen cells rebuilds every piece of writer-side
		// state, including the per-polygon cell directory.
		sc := supercover.New()
		sc.SetWalkRemoval(ix.opt.walkRemoval)
		for _, run := range s.cells.runs {
			for _, c := range run {
				sc.Insert(c.ID, c.Refs)
			}
		}
		sc.TakeDirty() // the rebuild is the published state; nothing is dirty
		ix.sc = sc
	}
	ix.polys = s.polys
	ix.polysShared = true
	ix.staged = false
}

// rewindTo force-rewinds one shard of a ShardedIndex to a previously
// published snapshot, un-publishing whatever landed since: the writer-side
// state is rebuilt from s's frozen cells and s itself is re-stored as the
// current snapshot. It exists for the cross-shard rollback path — when a
// multi-shard commit fails partway, the shards that already published their
// part must take it back so the composed view never exposes a partial
// batch. (The rolled-back snapshots stay valid for readers that pinned
// them; the composed reader never completes a pin inside the commit's
// generation window, so it never observes the partial state.)
//
// Unlike restore, the writer here is *ahead* of s — its dirty marks were
// consumed by the successful publish — so the region-scoped undo cannot
// express the rewind and the covering is rebuilt wholesale. The cost is
// O(shard), acceptable for a rare failure path. Any in-flight compaction is
// abandoned (its base may descend from the un-published snapshot) and the
// encoder is replaced: the next publish takes the full-freeze path, which
// rebuilds consistent encoder state from scratch.
//
//act:publisher
func (ix *Index) rewindTo(s *Snapshot) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.abandonCompactionLocked()
	ix.enc = cellindex.NewEncoder()
	ix.fullNext = true
	ix.sc.TakeDirty() // drop stale marks; the reset below rebuilds from scratch
	ix.resetToSnapshot(s, nil, true)
	ix.cur.Store(s)
}

// restoreRegions resets every dirty subtree from the snapshot's frozen
// cells. On any failure the covering may be partially reset — still safe,
// because the caller then rebuilds it from scratch.
//
//act:requires mu
func (ix *Index) restoreRegions(s *Snapshot, roots []cellid.CellID) bool {
	var scratch []supercover.Cell
	for _, r := range roots {
		scratch = s.cells.appendRange(scratch[:0], r.RangeMin(), r.RangeMax())
		if !ix.sc.ResetRegion(r, scratch) {
			ix.sc.TakeDirty()
			return false
		}
	}
	// Drop the marks the resets' inserts just made: the writer now matches
	// the published snapshot exactly.
	ix.sc.TakeDirty()
	return true
}

// Precision returns the configured precision bound in meters, or 0 when the
// index is exact-only.
func (ix *Index) Precision() float64 { return ix.opt.precisionMeters }

// publishCounters reports how many publishes took the incremental patch
// path vs the full-rebuild path (tests and benchmarks assert the fast path
// actually engages).
func (ix *Index) publishCounters() (patched, full int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.patched, ix.full
}

// Covers returns the ids of all polygons covering p, exactly.
//
// Deprecated: use Current().Covers. This forwarder queries whatever
// snapshot happens to be published at call time; consecutive calls may see
// different snapshots when writers are active.
func (ix *Index) Covers(p Point) []PolygonID { return ix.Current().Covers(p) }

// CoversApprox returns polygon ids without any PIP test.
//
// Deprecated: use Current().CoversApprox.
func (ix *Index) CoversApprox(p Point) []PolygonID { return ix.Current().CoversApprox(p) }

// CoversBatch answers many point queries in one call.
//
// Deprecated: use Current().CoversBatch.
func (ix *Index) CoversBatch(points []Point, opt QueryOptions) [][]PolygonID {
	return ix.Current().CoversBatch(points, opt)
}

// JoinCount counts points per polygon through the batch probe pipeline.
//
// Deprecated: use Current().JoinCount.
func (ix *Index) JoinCount(points []Point, opt QueryOptions) JoinResult {
	return ix.Current().JoinCount(points, opt)
}

// Join counts points per polygon.
//
// Deprecated: use Current().JoinCount with QueryOptions{Exact, Threads}.
func (ix *Index) Join(points []Point, exact bool, threads int) JoinResult {
	return ix.Current().Join(points, exact, threads)
}

// Stats returns structural statistics of the published snapshot.
//
// Deprecated: use Current().Stats.
func (ix *Index) Stats() Stats { return ix.Current().Stats() }

// Removed reports whether the id was removed.
//
// Deprecated: use Current().Removed.
func (ix *Index) Removed(id PolygonID) bool { return ix.Current().Removed(id) }

// probeBufs recycles the per-call conversion arrays. They live only for the
// duration of one batch call (join results never reference them), and at
// high call rates their allocation volume alone would drive the GC mark
// frequency up.
type probeBufs struct {
	pts   []geom.Point
	cells []cellid.CellID
}

var probeBufPool sync.Pool

// toProbeParallel is the probe-input conversion chunked across workers —
// the cell conversion is a pure per-point Hilbert encoding and dominates
// batch latency at high point counts. Approximate-mode joins never touch
// the geometry, so the internal point array is skipped entirely (needPts
// false). release returns the buffers to the pool; call it once no join is
// using them.
func toProbeParallel(points []Point, threads int, needPts bool) ([]geom.Point, []cellid.CellID, func()) {
	n := len(points)
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if chunks := n / 4096; threads > chunks {
		threads = chunks // conversion is ~100ns/point; don't spawn for less
	}
	bufs, _ := probeBufPool.Get().(*probeBufs)
	if bufs == nil {
		bufs = &probeBufs{}
	}
	var pts []geom.Point
	if needPts {
		if cap(bufs.pts) >= n {
			pts = bufs.pts[:n]
		} else {
			pts = make([]geom.Point, n)
			bufs.pts = pts
		}
	}
	var cells []cellid.CellID
	if cap(bufs.cells) >= n {
		cells = bufs.cells[:n]
	} else {
		cells = make([]cellid.CellID, n)
		bufs.cells = cells
	}
	release := func() { probeBufPool.Put(bufs) }
	convert := func(begin, end int) {
		for i := begin; i < end; i++ {
			gp := geom.Point{X: points[i].Lon, Y: points[i].Lat}
			if needPts {
				pts[i] = gp
			}
			cells[i] = cellid.FromPoint(gp)
		}
	}
	if threads <= 1 {
		convert(0, n)
		return pts, cells, release
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for begin := 0; begin < n; begin += chunk {
		end := begin + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		//act:norecover pure-compute conversion over disjoint caller-owned ranges; a panic is a broken invariant with no state to contain
		go func(b, e int) {
			defer wg.Done()
			convert(b, e)
		}(begin, end)
	}
	wg.Wait()
	return pts, cells, release
}

func toJoinResult(res join.Result) JoinResult {
	return JoinResult{
		Counts:         res.Counts,
		PIPTests:       res.PIPTests,
		STHPercent:     res.STHPercent(),
		CacheHits:      res.CacheHits,
		Duration:       res.Duration,
		ThroughputMpts: res.ThroughputMpts(),
	}
}
