// Package actjoin is a main-memory point-polygon join library built on an
// Adaptive Cell Trie (ACT), reproducing Kipf et al., "Adaptive Main-Memory
// Indexing for High-Performance Point-Polygon Joins" (EDBT 2020).
//
// The library indexes a mostly-static set of largely disjoint polygons
// (city neighborhoods, tax zones, geofences) and answers "which polygons
// cover this point" at tens of millions of points per second per core.
//
// Two operating modes mirror the paper's two join algorithms:
//
//   - With a precision bound (WithPrecision), the index refines polygon
//     boundaries until every false positive is within the bound, and
//     queries never perform geometric point-in-polygon (PIP) tests.
//   - Without one, queries are exact: the index identifies most results via
//     true-hit filtering and falls back to PIP tests only for points near
//     polygon boundaries. Train adapts the index to an expected query
//     distribution to make that fallback rare.
//
// Quick start:
//
//	idx, err := actjoin.NewIndex(polygons, actjoin.WithPrecision(4))
//	if err != nil { ... }
//	ids := idx.CoversApprox(actjoin.Point{Lon: -73.98, Lat: 40.75})
package actjoin

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"actjoin/internal/act"
	"actjoin/internal/cellid"
	"actjoin/internal/cellindex"
	"actjoin/internal/cover"
	"actjoin/internal/geom"
	"actjoin/internal/join"
	"actjoin/internal/refs"
	"actjoin/internal/supercover"
)

// Point is a geographic location in degrees.
type Point struct {
	Lon, Lat float64
}

// Ring is a closed polygon ring; the closing vertex must not be repeated.
type Ring []Point

// Polygon is an area with an exterior ring and optional holes.
type Polygon struct {
	Exterior Ring
	Holes    []Ring
}

// PolygonID identifies a polygon by its position in the slice passed to
// NewIndex.
type PolygonID = uint32

// MaxPolygons is the largest indexable polygon count (30-bit ids, as in the
// paper's tagged-entry encoding).
const MaxPolygons = refs.MaxPolygonID + 1

// options collect the build configuration.
type options struct {
	precisionMeters float64
	delta           int
	coveringCells   int
	interiorCells   int
}

// Option configures NewIndex.
type Option func(*options) error

// WithPrecision enables the approximate mode with the given distance bound
// in meters: every point reported for a polygon is inside it or within
// `meters` of it, and approximate queries never run PIP tests. The paper's
// headline configuration is 4 meters.
func WithPrecision(meters float64) Option {
	return func(o *options) error {
		if meters <= 0 || math.IsNaN(meters) || math.IsInf(meters, 0) {
			return fmt.Errorf("actjoin: invalid precision %v", meters)
		}
		o.precisionMeters = meters
		return nil
	}
}

// WithGranularity sets the trie granularity δ — quadtree levels per radix
// level. Valid values are 1, 2 and 4 (ACT1/ACT2/ACT4); the default is 4,
// the paper's fastest configuration.
func WithGranularity(delta int) Option {
	return func(o *options) error {
		if delta != 1 && delta != 2 && delta != 4 {
			return fmt.Errorf("actjoin: granularity must be 1, 2 or 4, got %d", delta)
		}
		o.delta = delta
		return nil
	}
}

// WithCoveringBudget overrides the per-polygon approximation budgets (the
// paper's defaults are 128 covering cells and 256 interior cells).
func WithCoveringBudget(coveringCells, interiorCells int) Option {
	return func(o *options) error {
		if coveringCells < 4 || interiorCells < 0 {
			return fmt.Errorf("actjoin: invalid covering budget %d/%d", coveringCells, interiorCells)
		}
		o.coveringCells = coveringCells
		o.interiorCells = interiorCells
		return nil
	}
}

// Index is an immutable point-polygon join index. All query methods are
// safe for concurrent use; Train is not (train before sharing).
type Index struct {
	polys []*geom.Polygon
	sc    *supercover.SuperCovering
	tree  *act.Tree
	table *refs.Table
	opt   options

	precisionLevel int
	numCells       int
}

// NewIndex builds an index over the polygons. Polygon ids are slice
// positions. The build computes per-polygon coverings, merges them into the
// super covering and freezes the Adaptive Cell Trie.
func NewIndex(polygons []Polygon, opts ...Option) (*Index, error) {
	o := options{delta: act.Delta4, coveringCells: 128, interiorCells: 256}
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return nil, err
		}
	}
	if len(polygons) == 0 {
		return nil, errors.New("actjoin: no polygons")
	}
	if len(polygons) > MaxPolygons {
		return nil, fmt.Errorf("actjoin: %d polygons exceed the %d limit", len(polygons), MaxPolygons)
	}

	internal := make([]*geom.Polygon, len(polygons))
	var bound geom.Rect = geom.EmptyRect()
	for i, p := range polygons {
		gp, err := toGeom(p)
		if err != nil {
			return nil, fmt.Errorf("actjoin: polygon %d: %w", i, err)
		}
		internal[i] = gp
		bound = bound.Union(gp.Bound())
	}

	sc := supercover.Build(internal, supercover.Options{
		Covering: cover.Options{MaxCells: o.coveringCells},
		Interior: cover.Options{MaxCells: o.interiorCells, MaxLevel: 20},
	})

	ix := &Index{polys: internal, sc: sc, opt: o}
	if o.precisionMeters > 0 {
		ix.precisionLevel = cellid.LevelForMaxDiagonalMeters(o.precisionMeters, bound.Center().Y)
		sc.RefineToPrecision(internal, ix.precisionLevel)
	}
	ix.freeze()
	return ix, nil
}

func toGeom(p Polygon) (*geom.Polygon, error) {
	rings := make([]geom.Ring, 0, 1+len(p.Holes))
	conv := func(r Ring) (geom.Ring, error) {
		out := make(geom.Ring, len(r))
		for i, v := range r {
			if math.IsNaN(v.Lon) || math.IsNaN(v.Lat) ||
				v.Lon < -180 || v.Lon > 180 || v.Lat < -90 || v.Lat > 90 {
				return nil, fmt.Errorf("vertex %d out of range: (%v, %v)", i, v.Lon, v.Lat)
			}
			out[i] = geom.Point{X: v.Lon, Y: v.Lat}
		}
		return out, nil
	}
	ext, err := conv(p.Exterior)
	if err != nil {
		return nil, err
	}
	rings = append(rings, ext)
	for _, h := range p.Holes {
		hr, err := conv(h)
		if err != nil {
			return nil, err
		}
		rings = append(rings, hr)
	}
	return geom.NewPolygon(rings...)
}

// freeze rebuilds the ACT and lookup table from the current super covering.
func (ix *Index) freeze() {
	kvs, table := cellindex.Encode(ix.sc.Cells())
	ix.tree = act.Build(kvs, ix.opt.delta)
	ix.table = table
	ix.numCells = len(kvs)
}

// Precision returns the configured precision bound in meters, or 0 when the
// index is exact-only.
func (ix *Index) Precision() float64 { return ix.opt.precisionMeters }

// Covers returns the ids of all polygons covering p, exactly: candidate
// cells are refined with PIP tests (the paper's accurate join).
func (ix *Index) Covers(p Point) []PolygonID {
	return ix.query(p, true)
}

// CoversApprox returns polygon ids without any PIP test. With a precision
// bound of d meters, every reported polygon is within d of p; without one,
// results may include polygons whose boundary cells contain p.
func (ix *Index) CoversApprox(p Point) []PolygonID {
	return ix.query(p, false)
}

func (ix *Index) query(p Point, exact bool) []PolygonID {
	gp := geom.Point{X: p.Lon, Y: p.Lat}
	entry := ix.tree.Find(cellid.FromPoint(gp))
	if entry.IsFalseHit() {
		return nil
	}
	var out []PolygonID
	ix.table.Visit(entry, func(r refs.Ref) {
		if r.Interior() || !exact {
			out = append(out, r.PolygonID())
			return
		}
		if ix.polys[r.PolygonID()].ContainsPoint(gp) {
			out = append(out, r.PolygonID())
		}
	})
	return out
}

// TrainStats reports the outcome of Train.
type TrainStats struct {
	PointsSeen    int
	CellsSplit    int
	BudgetReached bool
	NumCells      int // cells after training
}

// Train adapts the index to an expected point distribution (the paper's
// Section 3.3.1): every training point hitting a cell that would require a
// PIP test splits that cell one level, until maxCells (0 = unlimited) is
// reached. The trie is rebuilt afterwards. Training mutates the index; do
// not run queries concurrently with it.
func (ix *Index) Train(points []Point, maxCells int) TrainStats {
	cells := make([]cellid.CellID, len(points))
	for i, p := range points {
		cells[i] = cellid.FromPoint(geom.Point{X: p.Lon, Y: p.Lat})
	}
	res := ix.sc.Train(ix.polys, cells, maxCells)
	ix.freeze()
	return TrainStats{
		PointsSeen:    res.PointsSeen,
		CellsSplit:    res.Splits,
		BudgetReached: res.BudgetReached,
		NumCells:      ix.numCells,
	}
}

// JoinResult summarizes a bulk join.
type JoinResult struct {
	// Counts[pid] is the number of points covered by polygon pid.
	Counts []int64
	// PIPTests is the number of geometric refinements performed (0 in
	// approximate mode).
	PIPTests int64
	// STHPercent is the share of points answered without any candidate hit
	// (the paper's "solely true hits" metric).
	STHPercent float64
	// CacheHits is the number of probes answered from the batch pipeline's
	// last-cell cache without a trie walk (0 on the per-point path).
	CacheHits int64
	// Duration is the probe-phase wall time.
	Duration time.Duration
	// ThroughputMpts is points per second in millions.
	ThroughputMpts float64
}

// Join counts points per polygon — the paper's evaluation workload. exact
// selects the accurate join; threads > 1 parallelizes the probe phase with
// the paper's batched atomic cursor. JoinCount is the batch-pipeline
// successor with sorted probing and last-cell caching.
func (ix *Index) Join(points []Point, exact bool, threads int) JoinResult {
	pts, cells, release := toProbeParallel(points, threads, true)
	mode := join.Approximate
	if exact {
		mode = join.Exact
	}
	res := join.Run(ix.tree, ix.table, pts, cells, ix.polys, join.Options{Mode: mode, Threads: threads})
	release()
	return toJoinResult(res)
}

// BatchOptions configure the bulk query methods CoversBatch and JoinCount.
// The zero value is a sensible default: approximate mode, input order, all
// CPUs.
type BatchOptions struct {
	// Exact refines candidate hits with PIP tests; batch results then match
	// Covers. When false, results match CoversApprox.
	Exact bool
	// Sorted probes the points in cell-id order internally, so runs of
	// nearby points share trie paths and the last-cell cache. Results are
	// always reported in input order.
	Sorted bool
	// Threads is the number of probe workers; 0 uses all CPUs, 1 runs
	// single-threaded.
	Threads int
}

func (o BatchOptions) internal() join.BatchOptions {
	mode := join.Approximate
	if o.Exact {
		mode = join.Exact
	}
	return join.BatchOptions{Mode: mode, Sorted: o.Sorted, Threads: o.Threads}
}

// CoversBatch answers many point queries in one call: out[i] holds the ids
// of the polygons covering points[i] (nil when none), identical to calling
// Covers (with opt.Exact) or CoversApprox per point, but through the batch
// probe pipeline — optionally cell-id-sorted, last-cell-cached, and
// parallelized with the paper's atomic-counter batching.
func (ix *Index) CoversBatch(points []Point, opt BatchOptions) [][]PolygonID {
	pts, cells, release := toProbeParallel(points, opt.Threads, opt.Exact)
	out, _ := join.RunBatchCollect(ix.tree, ix.table, pts, cells, ix.polys, opt.internal())
	release()
	return out
}

// JoinCount counts points per polygon through the batch probe pipeline. It
// computes the same counts as Join but honors BatchOptions (sorted probing,
// last-cell caching); the returned CacheHits reports how many probes skipped
// the trie walk.
func (ix *Index) JoinCount(points []Point, opt BatchOptions) JoinResult {
	pts, cells, release := toProbeParallel(points, opt.Threads, opt.Exact)
	res := join.RunBatchCount(ix.tree, ix.table, pts, cells, ix.polys, opt.internal())
	release()
	return toJoinResult(res)
}

// probeBufs recycles the per-call conversion arrays. They live only for the
// duration of one batch call (join results never reference them), and at
// high call rates their allocation volume alone would drive the GC mark
// frequency up.
type probeBufs struct {
	pts   []geom.Point
	cells []cellid.CellID
}

var probeBufPool sync.Pool

// toProbeParallel is toProbe chunked across workers — the cell conversion is
// a pure per-point Hilbert encoding and dominates batch latency at high
// point counts. Approximate-mode joins never touch the geometry, so the
// internal point array is skipped entirely (needPts false). release returns
// the buffers to the pool; call it once no join is using them.
func toProbeParallel(points []Point, threads int, needPts bool) ([]geom.Point, []cellid.CellID, func()) {
	n := len(points)
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if chunks := n / 4096; threads > chunks {
		threads = chunks // conversion is ~100ns/point; don't spawn for less
	}
	bufs, _ := probeBufPool.Get().(*probeBufs)
	if bufs == nil {
		bufs = &probeBufs{}
	}
	var pts []geom.Point
	if needPts {
		if cap(bufs.pts) >= n {
			pts = bufs.pts[:n]
		} else {
			pts = make([]geom.Point, n)
			bufs.pts = pts
		}
	}
	var cells []cellid.CellID
	if cap(bufs.cells) >= n {
		cells = bufs.cells[:n]
	} else {
		cells = make([]cellid.CellID, n)
		bufs.cells = cells
	}
	release := func() { probeBufPool.Put(bufs) }
	convert := func(begin, end int) {
		for i := begin; i < end; i++ {
			gp := geom.Point{X: points[i].Lon, Y: points[i].Lat}
			if needPts {
				pts[i] = gp
			}
			cells[i] = cellid.FromPoint(gp)
		}
	}
	if threads <= 1 {
		convert(0, n)
		return pts, cells, release
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for begin := 0; begin < n; begin += chunk {
		end := begin + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(b, e int) {
			defer wg.Done()
			convert(b, e)
		}(begin, end)
	}
	wg.Wait()
	return pts, cells, release
}

func toJoinResult(res join.Result) JoinResult {
	return JoinResult{
		Counts:         res.Counts,
		PIPTests:       res.PIPTests,
		STHPercent:     res.STHPercent(),
		CacheHits:      res.CacheHits,
		Duration:       res.Duration,
		ThroughputMpts: res.ThroughputMpts(),
	}
}

// Stats describes the built index.
type Stats struct {
	NumPolygons    int
	NumCells       int // super covering cells
	NumTrieNodes   int
	TrieSizeBytes  int // node arena
	TableSizeBytes int // shared lookup table
	Granularity    int // quadtree levels per radix level (δ)
	PrecisionLevel int // refinement level, 0 when exact-only
}

// Stats returns structural statistics of the index.
func (ix *Index) Stats() Stats {
	return Stats{
		NumPolygons:    len(ix.polys),
		NumCells:       ix.numCells,
		NumTrieNodes:   ix.tree.NumNodes(),
		TrieSizeBytes:  ix.tree.SizeBytes(),
		TableSizeBytes: ix.table.SizeBytes(),
		Granularity:    ix.opt.delta,
		PrecisionLevel: ix.precisionLevel,
	}
}
